//! Collective-protocol summaries (rule D8) and the static/runtime
//! refinement contract.
//!
//! Every fn body is summarized as a regular expression over collective
//! *kinds* — the alphabet is [`crate::taint::COLLECTIVES`] — built
//! bottom-up through the call graph:
//!
//! - a resolved workspace call contributes its callee's summary (an
//!   `Alt` over all candidates when method resolution is ambiguous),
//! - an unresolved call contributes `Empty` and is recorded by name in
//!   the summary's honest `unresolved` list (std/vendor calls cannot
//!   issue our collectives, so `Empty` is the faithful reading),
//! - recursion is cut with [`Proto::Unknown`], which matches any suffix.
//!
//! Control flow composes as: sequencing → `Seq`, branching → `Alt` over
//! the branch protocols *including early-exit prefixes*, loops → `Star`.
//! This makes the summary an over-approximation of the set of collective
//! call sequences any execution can issue, which is exactly the shape the
//! runtime cross-check needs: a CheckedComm call-kind trace must be a
//! word in the summary's language ([`trace_matches`]).
//!
//! D8 itself (`protocol-divergence`) is the SPMD lockstep property: at a
//! *rank-tainted* branch (uid reported by [`crate::taint::analyze_fn`]),
//! different ranks take different paths — so every path must issue the
//! same collective sequence, i.e. all branch protocols must normalize
//! identically, and a rank-tainted loop must have a collective-free body.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::callgraph::{FnId, Resolution, Workspace};
use crate::parse::{Arm, FnItem, LoopKind, Node, Segment};
use crate::Violation;

/// A protocol: a regular expression over collective kind names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Proto {
    /// One collective call of this kind.
    Kind(String),
    /// Sequence; `Seq([])` is the empty protocol.
    Seq(Vec<Proto>),
    /// Alternation over branch protocols.
    Alt(Vec<Proto>),
    /// Zero or more repetitions (loops).
    Star(Box<Proto>),
    /// Recursion cut: matches any suffix of a trace.
    Unknown,
}

/// The empty protocol (issues no collectives).
pub fn empty() -> Proto {
    Proto::Seq(Vec::new())
}

fn seq2(a: Proto, b: Proto) -> Proto {
    Proto::Seq(vec![a, b])
}

fn alt(mut v: Vec<Proto>) -> Proto {
    if v.len() == 1 {
        v.pop().unwrap()
    } else {
        Proto::Alt(v)
    }
}

/// Canonical text form — `normalize` first for a comparable key.
/// `-` empty, `kind`, `[a b]` seq, `(a|b)` alt, `{a}*` star, `?` unknown.
pub fn key(p: &Proto) -> String {
    match p {
        Proto::Kind(k) => k.clone(),
        Proto::Seq(v) if v.is_empty() => "-".to_string(),
        Proto::Seq(v) => {
            let inner: Vec<String> = v.iter().map(key).collect();
            format!("[{}]", inner.join(" "))
        }
        Proto::Alt(v) => {
            let inner: Vec<String> = v.iter().map(key).collect();
            format!("({})", inner.join("|"))
        }
        Proto::Star(i) => format!("{{{}}}*", key(i)),
        Proto::Unknown => "?".to_string(),
    }
}

/// Canonicalize: flatten nested `Seq`/`Alt`, drop empties from `Seq`,
/// dedup + sort `Alt` children by key, collapse `Star` of empty.
pub fn normalize(p: &Proto) -> Proto {
    match p {
        Proto::Kind(k) => Proto::Kind(k.clone()),
        Proto::Unknown => Proto::Unknown,
        Proto::Star(i) => match normalize(i) {
            Proto::Seq(v) if v.is_empty() => empty(),
            Proto::Star(x) => Proto::Star(x),
            other => Proto::Star(Box::new(other)),
        },
        Proto::Seq(v) => {
            let mut out = Vec::new();
            for c in v {
                match normalize(c) {
                    Proto::Seq(w) => out.extend(w),
                    other => out.push(other),
                }
            }
            if out.len() == 1 {
                out.pop().unwrap()
            } else {
                Proto::Seq(out)
            }
        }
        Proto::Alt(v) => {
            let mut by_key: BTreeMap<String, Proto> = BTreeMap::new();
            let flatten = |n: Proto, by_key: &mut BTreeMap<String, Proto>| {
                if let Proto::Alt(w) = n {
                    for x in w {
                        by_key.insert(key(&x), x);
                    }
                } else {
                    by_key.insert(key(&n), n);
                }
            };
            for c in v {
                flatten(normalize(c), &mut by_key);
            }
            let mut out: Vec<Proto> = by_key.into_values().collect();
            // Alt of nothing means "no path"; callers never build it on
            // purpose, and treating it as empty keeps downstream total.
            if out.is_empty() {
                empty()
            } else if out.len() == 1 {
                out.pop().unwrap()
            } else {
                Proto::Alt(out)
            }
        }
    }
}

/// Where control can go after a node/block: the continuation protocol
/// (if any path falls through) plus early-exit path prefixes.
struct Flow {
    /// Protocol of the fall-through paths; `None` when every path exits.
    normal: Option<Proto>,
    returns: Vec<Proto>,
    breaks: Vec<Proto>,
    continues: Vec<Proto>,
}

impl Flow {
    fn just(p: Proto) -> Flow {
        Flow { normal: Some(p), returns: Vec::new(), breaks: Vec::new(), continues: Vec::new() }
    }
}

/// Bottom-up protocol summarizer with per-fn memoization.
pub struct Summarizer<'w> {
    ws: &'w Workspace,
    /// Fns that can transitively issue a collective; calls to anything
    /// else contribute `Empty` exactly (see
    /// [`Workspace::collective_reachers`]) — without this cut, the
    /// method-name over-approximation floods summaries with spurious
    /// recursion `Unknown`s through `.len()`-style false edges.
    reach: BTreeSet<FnId>,
    cache: BTreeMap<FnId, (Proto, BTreeSet<String>)>,
    in_progress: BTreeSet<FnId>,
    /// Unresolved call names accumulated for the fn currently summarized.
    pending: BTreeSet<String>,
}

impl<'w> Summarizer<'w> {
    pub fn new(ws: &'w Workspace) -> Self {
        Summarizer {
            ws,
            reach: ws.collective_reachers(),
            cache: BTreeMap::new(),
            in_progress: BTreeSet::new(),
            pending: BTreeSet::new(),
        }
    }

    /// Summarize a fn: its normalized protocol plus the names of calls
    /// that could not be resolved anywhere beneath it.
    pub fn summarize(&mut self, id: FnId) -> (Proto, BTreeSet<String>) {
        if let Some(c) = self.cache.get(&id) {
            return c.clone();
        }
        if !self.in_progress.insert(id) {
            // Recursion: the cycle's contribution is unknowable without
            // fixpoint iteration; `Unknown` keeps trace matching sound.
            return (Proto::Unknown, BTreeSet::new());
        }
        let ws = self.ws;
        let f = ws.fn_item(id);
        let saved = std::mem::take(&mut self.pending);
        let flow = self.block_flow(id.0, f, &f.body);
        let mut paths: Vec<Proto> = flow.returns;
        if let Some(n) = flow.normal {
            paths.push(n);
        }
        // Stray break/continue at fn level would be a parse artifact;
        // fold them in as paths rather than dropping them.
        paths.extend(flow.breaks);
        paths.extend(flow.continues);
        let proto = normalize(&alt(if paths.is_empty() { vec![empty()] } else { paths }));
        let unresolved = std::mem::replace(&mut self.pending, saved);
        self.in_progress.remove(&id);
        self.cache.insert(id, (proto.clone(), unresolved.clone()));
        (proto, unresolved)
    }

    /// Protocol of one flat segment: its calls, in token order. (Within a
    /// segment, nested-call argument evaluation precedes the outer call
    /// at runtime but follows it in token order; none of the workspace's
    /// collective call sites nest, and the sweep test keeps it that way.)
    fn seg_proto(&mut self, file: usize, caller: &FnItem, seg: &Segment) -> Proto {
        let mut parts = Vec::new();
        for call in &seg.calls {
            match self.ws.resolve(file, caller, call) {
                Resolution::Collective(k) => parts.push(Proto::Kind(k)),
                Resolution::Fns(cands) => {
                    // Candidates that cannot reach a collective contribute
                    // nothing; only protocol-relevant ones are summarized.
                    let relevant: Vec<_> =
                        cands.into_iter().filter(|c| self.reach.contains(c)).collect();
                    let mut alts = Vec::new();
                    for c in relevant {
                        let (p, u) = self.summarize(c);
                        self.pending.extend(u);
                        alts.push(p);
                    }
                    if !alts.is_empty() {
                        parts.push(alt(alts));
                    }
                }
                Resolution::Unresolved(name) => {
                    self.pending.insert(name);
                }
            }
        }
        Proto::Seq(parts)
    }

    fn block_flow(&mut self, file: usize, caller: &FnItem, nodes: &[Node]) -> Flow {
        let mut acc: Option<Proto> = Some(empty());
        let mut out = Flow { normal: None, returns: vec![], breaks: vec![], continues: vec![] };
        for node in nodes {
            let Some(pre) = acc.clone() else { break };
            let nf = self.node_flow(file, caller, node);
            out.returns.extend(nf.returns.into_iter().map(|p| seq2(pre.clone(), p)));
            out.breaks.extend(nf.breaks.into_iter().map(|p| seq2(pre.clone(), p)));
            out.continues.extend(nf.continues.into_iter().map(|p| seq2(pre.clone(), p)));
            acc = nf.normal.map(|p| seq2(pre, p));
        }
        out.normal = acc;
        out
    }

    fn node_flow(&mut self, file: usize, caller: &FnItem, node: &Node) -> Flow {
        match node {
            Node::Seg(s) => Flow::just(self.seg_proto(file, caller, s)),
            Node::Block(b) => self.block_flow(file, caller, b),
            Node::Exit { kind, value, .. } => {
                let vf = self.block_flow(file, caller, value);
                let prefix = vf.normal.unwrap_or_else(empty);
                let mut f = Flow { normal: None, returns: vf.returns, breaks: vf.breaks, continues: vf.continues };
                match kind {
                    crate::parse::ExitKind::Return => f.returns.push(prefix),
                    crate::parse::ExitKind::Break => f.breaks.push(prefix),
                    crate::parse::ExitKind::Continue => f.continues.push(prefix),
                }
                f
            }
            Node::Let { init, else_b, .. } => {
                let inf = self.block_flow(file, caller, init);
                let ip = inf.normal.clone().unwrap_or_else(empty);
                let ef = self.block_flow(file, caller, else_b);
                let mut f = Flow {
                    normal: inf.normal,
                    returns: inf.returns,
                    breaks: inf.breaks,
                    continues: inf.continues,
                };
                // The let-else block runs only on refutation and must
                // diverge; its exits are extra paths after the init.
                f.returns.extend(ef.returns.into_iter().map(|p| seq2(ip.clone(), p)));
                f.breaks.extend(ef.breaks.into_iter().map(|p| seq2(ip.clone(), p)));
                f.continues.extend(ef.continues.into_iter().map(|p| seq2(ip.clone(), p)));
                f
            }
            Node::If { cond, then_b, else_b, .. } => {
                let cf = self.block_flow(file, caller, cond);
                let cp = cf.normal.unwrap_or_else(empty);
                let tf = self.block_flow(file, caller, then_b);
                let ef = self.block_flow(file, caller, else_b);
                let mut f =
                    Flow { normal: None, returns: cf.returns, breaks: cf.breaks, continues: cf.continues };
                for (r, b, c) in [(tf.returns, tf.breaks, tf.continues), (ef.returns, ef.breaks, ef.continues)]
                {
                    f.returns.extend(r.into_iter().map(|p| seq2(cp.clone(), p)));
                    f.breaks.extend(b.into_iter().map(|p| seq2(cp.clone(), p)));
                    f.continues.extend(c.into_iter().map(|p| seq2(cp.clone(), p)));
                }
                let mut normals = Vec::new();
                normals.extend(tf.normal);
                normals.extend(ef.normal);
                if !normals.is_empty() {
                    f.normal = Some(seq2(cp, alt(normals)));
                }
                f
            }
            Node::Match { scrutinee, arms, .. } => {
                let sf = self.block_flow(file, caller, scrutinee);
                let sp = sf.normal.unwrap_or_else(empty);
                let mut f =
                    Flow { normal: None, returns: sf.returns, breaks: sf.breaks, continues: sf.continues };
                let mut normals = Vec::new();
                for arm in arms {
                    let (gp, af) = self.arm_flow(file, caller, arm);
                    f.returns.extend(af.returns.into_iter().map(|p| seq2(sp.clone(), p)));
                    f.breaks.extend(af.breaks.into_iter().map(|p| seq2(sp.clone(), p)));
                    f.continues.extend(af.continues.into_iter().map(|p| seq2(sp.clone(), p)));
                    if let Some(n) = af.normal {
                        normals.push(n);
                    }
                    let _ = gp;
                }
                if !normals.is_empty() {
                    f.normal = Some(seq2(sp, alt(normals)));
                }
                f
            }
            Node::Loop { kind, cond, body, .. } => self.loop_flow(file, caller, *kind, cond, body),
        }
    }

    /// One arm: guard protocol prefixes the body (guards are evaluated
    /// per matching rank; over-approximated as part of the arm path).
    fn arm_flow(&mut self, file: usize, caller: &FnItem, arm: &Arm) -> (Proto, Flow) {
        let gf = self.block_flow(file, caller, &arm.guard);
        let gp = gf.normal.unwrap_or_else(empty);
        let bf = self.block_flow(file, caller, &arm.body);
        let f = Flow {
            normal: bf.normal.map(|n| seq2(gp.clone(), n)),
            returns: bf.returns.into_iter().map(|p| seq2(gp.clone(), p)).collect(),
            breaks: bf.breaks.into_iter().map(|p| seq2(gp.clone(), p)).collect(),
            continues: bf.continues.into_iter().map(|p| seq2(gp.clone(), p)).collect(),
        };
        (gp, f)
    }

    fn loop_flow(
        &mut self,
        file: usize,
        caller: &FnItem,
        kind: LoopKind,
        cond: &[Node],
        body: &[Node],
    ) -> Flow {
        let cf = self.block_flow(file, caller, cond);
        let cp = cf.normal.unwrap_or_else(empty);
        let bf = self.block_flow(file, caller, body);
        // One body execution that reaches the back edge: fall-through or
        // `continue`.
        let mut iter_alts: Vec<Proto> = Vec::new();
        iter_alts.extend(bf.normal);
        iter_alts.extend(bf.continues);
        let bp = if iter_alts.is_empty() { None } else { Some(alt(iter_alts)) };
        let mut f = Flow { normal: None, returns: cf.returns, breaks: cf.breaks, continues: cf.continues };
        match kind {
            LoopKind::While => {
                // cp (bp cp)* then: cond-false exit (empty) or a break
                // prefix. Returns escape after any number of iterations.
                let star = match &bp {
                    Some(b) => Proto::Star(Box::new(seq2(b.clone(), cp.clone()))),
                    None => empty(),
                };
                let head = seq2(cp, star);
                let mut exits = vec![empty()];
                exits.extend(bf.breaks);
                f.normal = Some(seq2(head.clone(), alt(exits)));
                f.returns.extend(bf.returns.into_iter().map(|p| seq2(head.clone(), p)));
            }
            LoopKind::For => {
                // `cond` holds the iterated expression: evaluated once.
                let star = match &bp {
                    Some(b) => Proto::Star(Box::new(b.clone())),
                    None => empty(),
                };
                let head = seq2(cp, star);
                let mut exits = vec![empty()];
                exits.extend(bf.breaks);
                f.normal = Some(seq2(head.clone(), alt(exits)));
                f.returns.extend(bf.returns.into_iter().map(|p| seq2(head.clone(), p)));
            }
            LoopKind::Loop => {
                // Exits only via break/return; no break and no return
                // means the loop diverges (normal stays None).
                let star = match &bp {
                    Some(b) => Proto::Star(Box::new(b.clone())),
                    None => empty(),
                };
                if !bf.breaks.is_empty() {
                    f.normal = Some(seq2(star.clone(), alt(bf.breaks)));
                }
                f.returns.extend(bf.returns.into_iter().map(|p| seq2(star.clone(), p)));
            }
        }
        f
    }
}

/// All observable protocols through a sub-block: fall-through and every
/// early-exit prefix, altified and normalized. This is what two branches
/// of a rank-tainted conditional must agree on (D8).
fn branch_proto(sm: &mut Summarizer<'_>, file: usize, caller: &FnItem, nodes: &[Node]) -> Proto {
    let f = sm.block_flow(file, caller, nodes);
    let mut paths: Vec<Proto> = Vec::new();
    paths.extend(f.normal);
    paths.extend(f.returns);
    paths.extend(f.breaks);
    paths.extend(f.continues);
    if paths.is_empty() {
        empty()
    } else {
        normalize(&alt(paths))
    }
}

/// D8 (`protocol-divergence`) over one fn, given the rank-tainted
/// condition uids from [`crate::taint::analyze_fn`].
pub fn check_d8_fn(
    path: &str,
    sm: &mut Summarizer<'_>,
    file: usize,
    caller: &FnItem,
    tainted: &BTreeSet<u32>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_nodes(path, sm, file, caller, &caller.body, tainted, &mut out);
    out
}

fn check_nodes(
    path: &str,
    sm: &mut Summarizer<'_>,
    file: usize,
    caller: &FnItem,
    nodes: &[Node],
    tainted: &BTreeSet<u32>,
    out: &mut Vec<Violation>,
) {
    for node in nodes {
        match node {
            Node::Seg(_) => {}
            Node::Block(b) => check_nodes(path, sm, file, caller, b, tainted, out),
            Node::Exit { value, .. } => check_nodes(path, sm, file, caller, value, tainted, out),
            Node::Let { init, else_b, .. } => {
                check_nodes(path, sm, file, caller, init, tainted, out);
                check_nodes(path, sm, file, caller, else_b, tainted, out);
            }
            Node::If { uid, cond, then_b, else_b, line, .. } => {
                if tainted.contains(uid) {
                    let t = branch_proto(sm, file, caller, then_b);
                    let e = branch_proto(sm, file, caller, else_b);
                    if key(&t) != key(&e) {
                        out.push(Violation::new(
                            path,
                            *line,
                            "protocol-divergence",
                            format!(
                                "branches of this rank-dependent `if` issue different collective \
                                 sequences (`{}` vs `{}`); all ranks must issue the same ordered \
                                 collectives (DESIGN.md §12)",
                                key(&t),
                                key(&e)
                            ),
                        ));
                    }
                }
                check_nodes(path, sm, file, caller, cond, tainted, out);
                check_nodes(path, sm, file, caller, then_b, tainted, out);
                check_nodes(path, sm, file, caller, else_b, tainted, out);
            }
            Node::Match { uid, scrutinee, arms, line } => {
                if tainted.contains(uid) {
                    let protos: Vec<Proto> = arms
                        .iter()
                        .map(|a| {
                            let g = branch_proto(sm, file, caller, &a.guard);
                            let b = branch_proto(sm, file, caller, &a.body);
                            normalize(&seq2(g, b))
                        })
                        .collect();
                    let keys: BTreeSet<String> = protos.iter().map(key).collect();
                    if keys.len() > 1 {
                        out.push(Violation::new(
                            path,
                            *line,
                            "protocol-divergence",
                            format!(
                                "arms of this rank-dependent `match` issue different collective \
                                 sequences ({}); all ranks must issue the same ordered \
                                 collectives (DESIGN.md §12)",
                                keys.iter().map(|k| format!("`{k}`")).collect::<Vec<_>>().join(" vs ")
                            ),
                        ));
                    }
                }
                check_nodes(path, sm, file, caller, scrutinee, tainted, out);
                for a in arms {
                    check_nodes(path, sm, file, caller, &a.guard, tainted, out);
                    check_nodes(path, sm, file, caller, &a.body, tainted, out);
                }
            }
            Node::Loop { uid, cond, body, line, .. } => {
                if tainted.contains(uid) {
                    let bp = branch_proto(sm, file, caller, body);
                    if key(&bp) != key(&empty()) {
                        out.push(Violation::new(
                            path,
                            *line,
                            "protocol-divergence",
                            format!(
                                "this loop's trip count is rank-dependent but its body issues \
                                 collectives (`{}`); ranks would issue different numbers of \
                                 collective calls (DESIGN.md §12)",
                                key(&bp)
                            ),
                        ));
                    }
                }
                check_nodes(path, sm, file, caller, cond, tainted, out);
                check_nodes(path, sm, file, caller, body, tainted, out);
            }
        }
    }
}

/// Does `trace` (a full run's collective-kind sequence) belong to the
/// language of `proto`? Position-set NFA: no backtracking, terminates on
/// `Star` via fixpoint.
pub fn trace_matches(proto: &Proto, trace: &[&str]) -> bool {
    let starts: BTreeSet<usize> = std::iter::once(0usize).collect();
    advance(proto, &starts, trace).contains(&trace.len())
}

fn advance(p: &Proto, s: &BTreeSet<usize>, trace: &[&str]) -> BTreeSet<usize> {
    if s.is_empty() {
        return BTreeSet::new();
    }
    match p {
        Proto::Kind(k) => s
            .iter()
            .filter(|&&i| i < trace.len() && trace[i] == k.as_str())
            .map(|&i| i + 1)
            .collect(),
        Proto::Seq(v) => v.iter().fold(s.clone(), |acc, c| advance(c, &acc, trace)),
        Proto::Alt(v) => v.iter().flat_map(|c| advance(c, s, trace)).collect(),
        Proto::Star(inner) => {
            let mut cur = s.clone();
            loop {
                let next = advance(inner, &cur, trace);
                let before = cur.len();
                cur.extend(next);
                if cur.len() == before {
                    return cur;
                }
            }
        }
        Proto::Unknown => {
            let &min = s.iter().next().expect("nonempty");
            (min..=trace.len()).collect()
        }
    }
}

/// SPMD entry points summarized by `geo-analyze protocol` and pinned by
/// the runtime refinement test: (crate package, impl qual, fn name).
pub const ENTRIES: &[(&str, Option<&str>, &str)] = &[
    ("geographer_planner", Some("Planner"), "solve"),
    ("geographer_planner", Some("Planner"), "try_solve"),
    ("geographer", None, "partition_spmd"),
    ("geographer", None, "repartition_spmd"),
    ("geographer", None, "partition_hierarchical_spmd"),
    ("geographer", None, "repartition_hierarchical_spmd"),
    ("geographer", None, "balanced_kmeans"),
    ("geographer", None, "balanced_kmeans_warm"),
];

/// One entry point's summary.
pub struct EntrySummary {
    /// `crate::Qual::name` label.
    pub name: String,
    pub id: FnId,
    pub proto: Proto,
    pub unresolved: Vec<String>,
}

/// Summarize every [`ENTRIES`] fn found in the workspace.
pub fn entry_summaries(ws: &Workspace) -> Vec<EntrySummary> {
    let mut sm = Summarizer::new(ws);
    let mut out = Vec::new();
    for (crate_name, qual, name) in ENTRIES {
        let Some(id) = ws.find_fn(crate_name, *qual, name) else { continue };
        let (proto, unresolved) = sm.summarize(id);
        out.push(EntrySummary {
            name: ws.fn_label(id),
            id,
            proto,
            unresolved: unresolved.into_iter().collect(),
        });
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Protocol as JSON: `"kind"` | `{"seq":[…]}` | `{"alt":[…]}` |
/// `{"star":…}` | `"?"` (unknown) | `"-"` (empty).
pub fn proto_json(p: &Proto) -> String {
    match p {
        Proto::Kind(k) => format!("\"{}\"", json_escape(k)),
        Proto::Seq(v) if v.is_empty() => "\"-\"".to_string(),
        Proto::Seq(v) => {
            let inner: Vec<String> = v.iter().map(proto_json).collect();
            format!("{{\"seq\":[{}]}}", inner.join(","))
        }
        Proto::Alt(v) => {
            let inner: Vec<String> = v.iter().map(proto_json).collect();
            format!("{{\"alt\":[{}]}}", inner.join(","))
        }
        Proto::Star(i) => format!("{{\"star\":{}}}", proto_json(i)),
        Proto::Unknown => "\"?\"".to_string(),
    }
}

/// The `geo-analyze protocol --format json` payload.
pub fn summaries_json(entries: &[EntrySummary]) -> String {
    let mut out = String::from("{\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"protocol\": {}, \"key\": \"{}\", \"unresolved\": [{}]}}{}\n",
            json_escape(&e.name),
            proto_json(&e.proto),
            json_escape(&key(&e.proto)),
            e.unresolved
                .iter()
                .map(|u| format!("\"{}\"", json_escape(u)))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::scan::scan;
    use crate::taint;

    fn ws(src: &str) -> Workspace {
        let parsed = parse::parse_file(&scan(src)).expect("parse");
        Workspace::from_single("crates/core/src/x.rs", parsed)
    }

    fn summary(src: &str, name: &str) -> (Workspace, Proto) {
        let w = ws(src);
        let id = w.find_fn("core", None, name).expect("fn");
        let mut sm = Summarizer::new(&w);
        let (p, _) = sm.summarize(id);
        (w, p)
    }

    #[test]
    fn straight_line_protocol_is_a_kind_sequence() {
        let (_, p) = summary(
            "pub fn f<C: Comm>(c: &C) { c.barrier(); let g = c.allgather(vec![1u64]); drop(g); }\n",
            "f",
        );
        assert_eq!(key(&p), "[barrier allgather]");
    }

    #[test]
    fn calls_compose_bottom_up_and_loops_star() {
        let src = "fn step<C: Comm>(c: &C) { c.allreduce_sum_f64(&mut [0.0]); }\n\
                   pub fn f<C: Comm>(c: &C, iters: usize) { c.barrier(); for _ in 0..iters { step(c); } }\n";
        let (_, p) = summary(src, "f");
        assert_eq!(key(&p), "[barrier {allreduce_sum_f64}*]");
    }

    #[test]
    fn early_return_paths_become_alternatives() {
        let src = "pub fn f<C: Comm>(c: &C, done: bool) {\n\
                   \x20   c.barrier();\n\
                   \x20   if done { return; }\n\
                   \x20   c.allgather(vec![0u64]);\n\
                   }\n";
        let (_, p) = summary(src, "f");
        // Either barrier alone (early return) or barrier allgather.
        assert!(trace_matches(&p, &["barrier"]), "{}", key(&p));
        assert!(trace_matches(&p, &["barrier", "allgather"]), "{}", key(&p));
        assert!(!trace_matches(&p, &["allgather"]), "{}", key(&p));
    }

    #[test]
    fn trace_matching_handles_star_alt_unknown() {
        let p = Proto::Seq(vec![
            Proto::Kind("barrier".into()),
            Proto::Star(Box::new(Proto::Kind("allgather".into()))),
            Proto::Alt(vec![empty(), Proto::Kind("broadcast".into())]),
        ]);
        assert!(trace_matches(&p, &["barrier"]));
        assert!(trace_matches(&p, &["barrier", "allgather", "allgather", "broadcast"]));
        assert!(!trace_matches(&p, &["barrier", "broadcast", "allgather"]));
        let u = Proto::Seq(vec![Proto::Kind("barrier".into()), Proto::Unknown]);
        assert!(trace_matches(&u, &["barrier", "alltoallv", "alltoallv"]));
        assert!(!trace_matches(&u, &["alltoallv"]));
    }

    #[test]
    fn d8_flags_divergent_tainted_branch_and_accepts_symmetric_one() {
        let src = "pub fn bad<C: Comm>(c: &C) {\n\
                   \x20   if c.rank() == 0 { c.barrier(); } else { c.allgather(vec![0u64]); }\n\
                   }\n\
                   pub fn good<C: Comm>(c: &C) {\n\
                   \x20   if c.rank() == 0 { c.barrier(); } else { c.barrier(); }\n\
                   }\n";
        let w = ws(src);
        let mut sm = Summarizer::new(&w);
        let file = &w.files[0];
        let mut hits = Vec::new();
        for f in &file.parsed.fns {
            let t = taint::analyze_fn("crates/core/src/x.rs", f, &file.parsed.toks);
            hits.extend(check_d8_fn("crates/core/src/x.rs", &mut sm, 0, f, &t.tainted_conds));
        }
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!((hits[0].line, hits[0].rule), (2, "protocol-divergence"));
    }

    #[test]
    fn d8_flags_rank_bounded_collective_loop() {
        let src = "pub fn bad<C: Comm>(c: &C) {\n\
                   \x20   for _ in 0..c.rank() { c.barrier(); }\n\
                   }\n";
        let w = ws(src);
        let mut sm = Summarizer::new(&w);
        let file = &w.files[0];
        let f = &file.parsed.fns[0];
        let t = taint::analyze_fn("crates/core/src/x.rs", f, &file.parsed.toks);
        let hits = check_d8_fn("crates/core/src/x.rs", &mut sm, 0, f, &t.tainted_conds);
        assert!(
            hits.iter().any(|v| v.rule == "protocol-divergence" && v.line == 2),
            "{hits:?}"
        );
    }

    #[test]
    fn json_shapes_are_stable() {
        let p = Proto::Seq(vec![
            Proto::Kind("barrier".into()),
            Proto::Star(Box::new(Proto::Kind("allgather".into()))),
        ]);
        assert_eq!(proto_json(&p), "{\"seq\":[\"barrier\",{\"star\":\"allgather\"}]}");
        assert_eq!(proto_json(&empty()), "\"-\"");
        assert_eq!(proto_json(&Proto::Unknown), "\"?\"");
    }
}
