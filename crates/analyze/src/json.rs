//! A minimal hand-rolled JSON reader.
//!
//! The analyzer is dependency-free by design (it polices the rest of the
//! workspace, so it must not need anything the offline container cannot
//! vendor), and all it reads are the committed `BENCH_*.json` baselines —
//! machine-written, ASCII, small. This parser covers full JSON anyway:
//! nested containers, escapes, exponents; errors carry a byte offset.

/// A parsed JSON value. Objects keep insertion order (a `Vec`, not a map):
/// key lookup is linear, which is fine at bench-file sizes and avoids
/// pulling a map into the analyzer — or caring about hash order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn fields(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(f) => Some(f),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is a (finite) number.
    pub fn is_num(&self) -> bool {
        matches!(self, Value::Num(_))
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through byte-wise; re-slice
                    // on char boundaries to stay valid.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "s\n"}"#)
            .expect("parses");
        assert_eq!(v.get("a").unwrap().items().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().items().unwrap()[2], Value::Num(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Str("s\n".to_string())));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a": 01x}"#).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\t\"").unwrap(), Value::Str("A\t".to_string()));
    }
}
