//! Out-of-line `#[cfg(test)] mod name;` modules live in sibling *files*,
//! where the inline span marker cannot reach: the workspace walk must
//! resolve the declaration and analyze the module file as test code.

use std::fs;
use std::path::Path;

use geographer_analyze::analyze_workspace;

const TESTY_SRC: &str = "fn t() { let m = HashMap::new(); let _ = m; }\n";

#[test]
fn out_of_line_test_module_files_are_exempt_like_inline_ones() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("out_of_line_ws");
    let src = root.join("crates/core/src");
    fs::create_dir_all(src.join("solver")).unwrap();
    // The parent declares an out-of-line test module…
    fs::write(
        src.join("solver.rs"),
        "pub fn f() -> u8 {\n    1\n}\n\n#[cfg(test)]\nmod tests;\n",
    )
    .unwrap();
    // …whose file would violate D1 if misread as production code.
    fs::write(src.join("solver/tests.rs"), TESTY_SRC).unwrap();
    // Control: the same content in a production file stays flagged.
    fs::write(src.join("prod.rs"), TESTY_SRC).unwrap();

    let v = analyze_workspace(&root).unwrap();
    assert!(
        v.iter().any(|x| x.path == "crates/core/src/prod.rs" && x.rule == "hash-container"),
        "control file must stay in scope: {v:?}"
    );
    assert!(
        !v.iter().any(|x| x.path.ends_with("solver/tests.rs")),
        "out-of-line test module misread as production code: {v:?}"
    );
}
