//! D7 fixture: a collective dominated by a rank-dependent branch.

pub fn lopsided<C: Comm>(comm: &C) {
    let me = comm.rank();
    if me == 0 {
        comm.barrier();
    }
}
