// D3 fixture: unsafe block with no SAFETY comment (expected: line 4).

pub fn truncate(v: &mut Vec<u8>) {
    unsafe {
        v.set_len(0);
    }
}
