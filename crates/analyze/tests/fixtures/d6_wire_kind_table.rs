// D6 fixture: colliding, unused, and undeclared frame kinds
// (expected: collision at line 5, unused at lines 5 and 6, undeclared at 10).
mod kind {
    pub const HELLO: u8 = 1;
    pub const DATA: u8 = 1;
    pub const UNUSED: u8 = 3;
}

pub fn send_all() -> (u8, u8) {
    (kind::HELLO, kind::MISSING)
}
