// D4 fixture: wall clock constructed inside a kernel module (expected: line 4).

pub fn assign(points: &[f64]) -> f64 {
    let t0 = std::time::Instant::now();
    let s: f64 = points.iter().sum();
    let _ = t0.elapsed();
    s
}
