//! D10 fixture: allocation inside a marked hot kernel loop.

pub fn kernel(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    // geo-analyze: hot-loop
    for &x in xs {
        let tmp = vec![x; 4];
        acc += tmp[0] + tmp[3];
    }
    acc
}
