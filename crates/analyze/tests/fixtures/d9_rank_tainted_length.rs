//! D9 fixture: collective buffer length derived from the rank.

pub fn ragged<C: Comm>(comm: &C) {
    let mut buf = vec![0.0f64; comm.rank() + 1];
    comm.allreduce_sum_f64(&mut buf);
}
