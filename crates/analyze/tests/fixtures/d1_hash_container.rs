// D1 fixture: an iterated HashMap in solver code (expected: line 5).
use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
