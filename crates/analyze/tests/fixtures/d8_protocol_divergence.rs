//! D8 fixture: branches of a rank-tainted `if` issue different
//! collective sequences through helper calls — visible only via the
//! call graph, not intra-procedurally (no D7 fires here).

fn sync_a<C: Comm>(comm: &C) {
    comm.barrier();
}

fn sync_b<C: Comm>(comm: &C) {
    let _ = comm.allgather(vec![0u64]);
}

pub fn diverging<C: Comm>(comm: &C) {
    if comm.rank() == 0 {
        sync_a(comm);
    } else {
        sync_b(comm);
    }
}
