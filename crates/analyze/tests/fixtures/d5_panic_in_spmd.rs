// D5 fixture: panic inside an SPMD rank closure (expected: line 5).

pub fn fragile(p: usize) {
    let results = run_spmd(p, |c| {
        let first = c.allgather(vec![c.rank()]).pop().unwrap();
        first.len()
    });
    assert_eq!(results.len(), p);
}
