// D2 fixture: thread-schedule-dependent float reduction (expected: line 5).
use rayon::prelude::*;

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| x * 2.0)
        .sum()
}
