//! The known-bad corpus: one deliberately-violating snippet per rule,
//! asserting detection at the exact line. Fixtures are analyzed under
//! *virtual* workspace paths so each lands in its rule's scope (the files
//! themselves live under `tests/fixtures/`, which `analyze_workspace`
//! excludes).

use geographer_analyze::analyze_source;

/// Assert the fixture produces exactly `expected` as its (line, rule)
/// pairs, in order.
fn check(virtual_path: &str, src: &str, expected: &[(usize, &str)]) {
    let got: Vec<(usize, &str)> =
        analyze_source(virtual_path, src).iter().map(|v| (v.line, v.rule)).collect();
    let want: Vec<(usize, &str)> = expected.to_vec();
    assert_eq!(got, want, "fixture at {virtual_path}");
}

#[test]
fn d1_hash_container_detected_at_exact_line() {
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d1_hash_container.rs"),
        &[(5, "hash-container")],
    );
}

#[test]
fn d2_unordered_float_reduce_detected_at_exact_line() {
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d2_unordered_float_reduce.rs"),
        &[(5, "unordered-float-reduce")],
    );
}

#[test]
fn d3_unsafe_without_safety_detected_at_exact_line() {
    check(
        "crates/mesh/src/fixture.rs",
        include_str!("fixtures/d3_unsafe_without_safety.rs"),
        &[(4, "unsafe-without-safety")],
    );
}

#[test]
fn d4_kernel_entropy_detected_at_exact_line() {
    // Impersonates a kernel module: D4 is scoped to the hot-path file list.
    check(
        "crates/core/src/kmeans.rs",
        include_str!("fixtures/d4_kernel_entropy.rs"),
        &[(4, "kernel-entropy")],
    );
}

#[test]
fn d5_panic_in_spmd_detected_at_exact_line() {
    // Only the line inside the run_spmd call span fires; the assert on
    // line 8 is outside the span (and assert!-family is allowed anyway).
    check(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d5_panic_in_spmd.rs"),
        &[(5, "panic-in-spmd")],
    );
}

#[test]
fn d5_comm_impl_scope_in_comm_implementation_files() {
    // In a parcomm Comm file, D5 covers `impl … Comm for …` blocks; a
    // free helper fn in the same file is out of scope.
    let src = "pub struct X;\nimpl Comm for X {\n    fn f(&self, x: Option<u8>) -> u8 {\n        x.expect(\"set\")\n    }\n}\npub fn helper(x: Option<u8>) -> u8 {\n    x.expect(\"set\")\n}\n";
    check("crates/parcomm/src/checked.rs", src, &[(4, "panic-in-spmd")]);
}

#[test]
fn d6_wire_kind_table_detected_at_exact_lines() {
    // DATA collides with HELLO and is itself never referenced; UNUSED is
    // never referenced; MISSING is referenced but not declared.
    check(
        "crates/parcomm/src/fixture.rs",
        include_str!("fixtures/d6_wire_kind_table.rs"),
        &[
            (5, "wire-kind-table"),
            (5, "wire-kind-table"),
            (6, "wire-kind-table"),
            (10, "wire-kind-table"),
        ],
    );
}

#[test]
fn d7_rank_tainted_guard_detected_at_exact_line() {
    // The guarded collective fires D7 at its own line; the rank-tainted
    // `if` with lopsided branch protocols also fires D8 at the branch.
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d7_rank_tainted_guard.rs"),
        &[(5, "protocol-divergence"), (6, "rank-tainted-guard")],
    );
}

#[test]
fn d8_protocol_divergence_detected_through_the_call_graph() {
    // The divergence is only visible by summarizing the helper fns:
    // neither branch contains a collective call site itself, so D7 stays
    // silent and D8 fires at the rank-tainted `if`.
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d8_protocol_divergence.rs"),
        &[(14, "protocol-divergence")],
    );
}

#[test]
fn d9_rank_tainted_length_detected_at_exact_line() {
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d9_rank_tainted_length.rs"),
        &[(5, "rank-tainted-length")],
    );
}

#[test]
fn d10_hot_loop_alloc_detected_at_exact_line() {
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d10_hot_loop_alloc.rs"),
        &[(7, "hot-loop-alloc")],
    );
}

#[test]
fn fixtures_are_waivable_and_waivers_must_not_go_stale() {
    let src = "pub fn f() {\n    // geo-analyze: allow(hash-container): membership-only, never iterated.\n    let s = HashSet::new();\n    let _ = s;\n}\n";
    check("crates/core/src/fixture.rs", src, &[]);
    let stale = "pub fn f() {\n    // geo-analyze: allow(hash-container): nothing here.\n    let s = 1;\n    let _ = s;\n}\n";
    check("crates/core/src/fixture.rs", stale, &[(2, "stale-waiver")]);
}
