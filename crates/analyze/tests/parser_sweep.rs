//! Parser-tolerance sweep: the expression layer must walk every workspace
//! `src/` file without error, and every collective call site the old
//! lexer finds must also be found — at the identical position — by the
//! parser. A parse failure here means a workspace construct fell outside
//! the supported subset, which would silently downgrade D7–D9 to
//! lexer-level analysis for that file.

use std::path::{Path, PathBuf};

use geographer_analyze::parse::{self, CallSite, Node};
use geographer_analyze::scan;

/// Names of the `Comm` collectives (the terminals of the protocol rules).
const COLLECTIVES: &[&str] = &[
    "barrier",
    "allgather",
    "alltoallv",
    "allreduce",
    "allreduce_sum_f64",
    "allreduce_max_f64",
    "allreduce_min_f64",
    "allreduce_sum_u64",
    "exscan_sum_u64",
    "broadcast",
];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// All `src/` files of every workspace crate (fixture corpus excluded —
/// fixtures are deliberately partial snippets).
fn workspace_src_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("vendor"), &mut files);
    files.retain(|p| {
        let s = p.to_string_lossy().replace('\\', "/");
        !s.contains("/tests/fixtures/")
    });
    files.sort();
    assert!(files.len() > 30, "workspace source sweep found too few files");
    files
}

fn flat_calls(nodes: &[Node], out: &mut Vec<CallSite>) {
    for n in nodes {
        match n {
            Node::Seg(s) => out.extend(s.calls.iter().cloned()),
            Node::Let { init, else_b, .. } => {
                flat_calls(init, out);
                flat_calls(else_b, out);
            }
            Node::If { cond, then_b, else_b, .. } => {
                flat_calls(cond, out);
                flat_calls(then_b, out);
                flat_calls(else_b, out);
            }
            Node::Loop { cond, body, .. } => {
                flat_calls(cond, out);
                flat_calls(body, out);
            }
            Node::Match { scrutinee, arms, .. } => {
                flat_calls(scrutinee, out);
                for a in arms {
                    flat_calls(&a.guard, out);
                    flat_calls(&a.body, out);
                }
            }
            Node::Block(b) => flat_calls(b, out),
            Node::Exit { value, .. } => flat_calls(value, out),
        }
    }
}

#[test]
fn every_workspace_src_file_parses() {
    let mut failures = Vec::new();
    for f in workspace_src_files() {
        let text = std::fs::read_to_string(&f).expect("readable source");
        let lines = scan::scan(&text);
        if let Err(e) = parse::parse_file(&lines) {
            failures.push(format!("  {}: {e}\n", f.display()));
        }
    }
    assert!(
        failures.is_empty(),
        "parser failed on {} workspace file(s):\n{}",
        failures.len(),
        failures.concat()
    );
}

#[test]
fn parser_finds_every_lexer_collective_call_site() {
    let mut checked = 0usize;
    for f in workspace_src_files() {
        let text = std::fs::read_to_string(&f).expect("readable source");
        let lines = scan::scan(&text);
        let Ok(parsed) = parse::parse_file(&lines) else { continue };

        // Lexer view: `.name(` occurrences in blanked code.
        let mut lexer_sites: Vec<(usize, usize, &str)> = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            for name in COLLECTIVES {
                let mut from = 0usize;
                while let Some(rel) = {
                    let sub = &line.code[from.min(line.code.len())..];
                    scan::find_token(sub, name)
                } {
                    let at = from + rel;
                    let is_method_call = at > 0
                        && line.code.as_bytes()[at - 1] == b'.'
                        && line.code[at + name.len()..].trim_start().starts_with('(');
                    if is_method_call {
                        lexer_sites.push((i + 1, at, name));
                    }
                    from = at + name.len();
                }
            }
        }

        // Parser view: method call sites from every fn body.
        let mut calls = Vec::new();
        for fun in &parsed.fns {
            flat_calls(&fun.body, &mut calls);
        }
        for (line, col, name) in &lexer_sites {
            checked += 1;
            assert!(
                calls.iter().any(|c| {
                    c.is_method && c.name == *name && c.line == *line && c.col == *col
                }),
                "{}: lexer sees collective `.{name}(` at {line}:{col} but the parser does not",
                f.display()
            );
        }
    }
    assert!(checked > 50, "too few collective call sites cross-checked: {checked}");
}
