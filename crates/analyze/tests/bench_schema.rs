//! The committed `BENCH_*.json` baselines must conform to their schemas:
//! every registered file present and well-formed, every timing object
//! carrying its normalized `ns_per_point` companion, no baseline
//! committed without a schema, and the doc ↔ disk cross-reference closed
//! (no orphaned baselines, no dangling citations).

use std::path::Path;

use geographer_analyze::schema::{check_bench_dir, check_bench_docs};

#[test]
fn committed_bench_baselines_conform_to_their_schemas() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let errors = check_bench_dir(&root).expect("repo root readable");
    let listing: String = errors.iter().map(|e| format!("  {e}\n")).collect();
    assert!(errors.is_empty(), "{} bench-schema problem(s):\n{listing}", errors.len());
}

#[test]
fn committed_bench_baselines_are_cross_referenced_in_the_docs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let errors = check_bench_docs(&root).expect("repo root readable");
    let listing: String = errors.iter().map(|e| format!("  {e}\n")).collect();
    assert!(errors.is_empty(), "{} doc-reference problem(s):\n{listing}", errors.len());
}
