//! The committed `BENCH_*.json` baselines must conform to their schemas:
//! every registered file present and well-formed, every timing object
//! carrying its normalized `ns_per_point` companion, and no baseline
//! committed without a schema.

use std::path::Path;

use geographer_analyze::schema::check_bench_dir;

#[test]
fn committed_bench_baselines_conform_to_their_schemas() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let errors = check_bench_dir(&root).expect("repo root readable");
    let listing: String = errors.iter().map(|e| format!("  {e}\n")).collect();
    assert!(errors.is_empty(), "{} bench-schema problem(s):\n{listing}", errors.len());
}
