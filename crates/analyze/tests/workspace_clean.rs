//! The tier-1 gate: the analyzer's rules hold over the entire workspace.
//!
//! Every violation must be either fixed or carry an explicit justified
//! waiver — this test failing means a determinism/SPMD invariant was
//! broken (or a waiver went stale) since the last clean run.

use std::path::Path;

use geographer_analyze::analyze_workspace;

#[test]
fn workspace_has_zero_unwaived_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = analyze_workspace(&root).expect("workspace sources readable");
    let listing: String =
        violations.iter().map(|v| format!("  {v}\n")).collect();
    assert!(
        violations.is_empty(),
        "geo-analyze found {} unwaived violation(s):\n{listing}\
         fix each, or add `// geo-analyze: allow(rule): justification`",
        violations.len(),
    );
}
