//! Workload generators: the synthetic analogues of the paper's test data
//! (Sec. 5.2.3).
//!
//! | Paper instance family | Generator here |
//! |---|---|
//! | DelaunayX (2D random points, Delaunay-triangulated) | [`delaunay_unit_square`] |
//! | rgg_n (2D random geometric graphs) | [`rgg2d`] |
//! | hugetric / hugetrace / hugebubbles (adaptively refined 2D meshes) | [`families`] density meshes |
//! | 333SP / AS365 / NACA0015 … (2D FEM meshes) | [`families::airfoil_like`] |
//! | fesom 2.5D climate meshes with node weights | [`climate::climate25d`] |
//! | 3D Delaunay & Alya meshes | [`knn3d`] + [`grid::grid3d`] (substitution, see DESIGN.md §3) |
//! | time-stepped (drifting) workloads | [`dynamic`] scenarios over any of the above |
//!
//! All generators return a [`Mesh`]: points + node weights + the CSR graph
//! the partition quality is measured on.

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

pub mod climate;
pub mod delaunay;
pub mod density;
pub mod dynamic;
pub mod families;
pub mod grid;
pub mod knn3d;
pub mod rgg;

use geographer_geometry::{Point, WeightedPoints};
use geographer_graph::CsrGraph;

pub use climate::climate25d;
pub use delaunay::{delaunay_edges, delaunay_unit_square};
pub use dynamic::{DynamicWorkload, Scenario};
pub use grid::{grid2d, grid3d};
pub use knn3d::knn3d;
pub use rgg::rgg2d;

/// A geometric mesh: vertex coordinates, node weights, and the graph
/// structure connecting the vertices.
#[derive(Debug, Clone)]
pub struct Mesh<const D: usize> {
    /// Vertex coordinates.
    pub points: Vec<Point<D>>,
    /// Node weights (unit for unweighted families).
    pub weights: Vec<f64>,
    /// Undirected mesh graph in CSR form.
    pub graph: CsrGraph,
}

impl<const D: usize> Mesh<D> {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// The weighted point set (what geometric partitioners consume).
    pub fn weighted_points(&self) -> WeightedPoints<D> {
        WeightedPoints::new(self.points.clone(), self.weights.clone())
    }

    /// Structural sanity: sizes agree, graph symmetric, weights valid.
    /// Used by the generator test suites.
    pub fn validate(&self) {
        assert_eq!(self.points.len(), self.weights.len());
        assert_eq!(self.points.len(), self.graph.n());
        assert!(self.graph.is_symmetric(), "mesh graph must be symmetric");
        assert!(self.weights.iter().all(|w| w.is_finite() && *w > 0.0));
        assert!(self.points.iter().all(|p| p.is_finite()));
    }
}
