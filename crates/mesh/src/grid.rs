//! Structured grid meshes (2D quad grids and 3D hex grids with optional
//! coordinate jitter). The 3D grids stand in for the structured parts of
//! the Alya test cases.

use geographer_geometry::{Point, SplitMix64};
use geographer_graph::CsrGraph;

use crate::Mesh;

/// `w × h` 2D grid graph on unit-spaced coordinates, with jitter
/// `∈ [0, 0.5)` of the spacing applied to interior coordinates.
pub fn grid2d(w: usize, h: usize, jitter: f64, seed: u64) -> Mesh<2> {
    assert!(w >= 1 && h >= 1);
    assert!((0.0..0.5).contains(&jitter));
    let mut rng = SplitMix64::new(seed);
    let n = w * h;
    let mut points = Vec::with_capacity(n);
    for y in 0..h {
        for x in 0..w {
            let jx = if jitter > 0.0 { (rng.next_f64() - 0.5) * 2.0 * jitter } else { 0.0 };
            let jy = if jitter > 0.0 { (rng.next_f64() - 0.5) * 2.0 * jitter } else { 0.0 };
            points.push(Point::new([x as f64 + jx, y as f64 + jy]));
        }
    }
    let mut edges = Vec::with_capacity(2 * n);
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as u32;
            if x + 1 < w {
                edges.push((v, v + 1));
            }
            if y + 1 < h {
                edges.push((v, v + w as u32));
            }
        }
    }
    let graph = CsrGraph::from_edges(n, &edges);
    Mesh { points, weights: vec![1.0; n], graph }
}

/// `w × h × d` 3D grid graph, with jitter as in [`grid2d`].
pub fn grid3d(w: usize, h: usize, d: usize, jitter: f64, seed: u64) -> Mesh<3> {
    assert!(w >= 1 && h >= 1 && d >= 1);
    assert!((0.0..0.5).contains(&jitter));
    let mut rng = SplitMix64::new(seed);
    let n = w * h * d;
    let mut points = Vec::with_capacity(n);
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let mut c = [x as f64, y as f64, z as f64];
                if jitter > 0.0 {
                    for v in &mut c {
                        *v += (rng.next_f64() - 0.5) * 2.0 * jitter;
                    }
                }
                points.push(Point::new(c));
            }
        }
    }
    let idx = |x: usize, y: usize, z: usize| (z * h * w + y * w + x) as u32;
    let mut edges = Vec::with_capacity(3 * n);
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let v = idx(x, y, z);
                if x + 1 < w {
                    edges.push((v, idx(x + 1, y, z)));
                }
                if y + 1 < h {
                    edges.push((v, idx(x, y + 1, z)));
                }
                if z + 1 < d {
                    edges.push((v, idx(x, y, z + 1)));
                }
            }
        }
    }
    let graph = CsrGraph::from_edges(n, &edges);
    Mesh { points, weights: vec![1.0; n], graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_structure() {
        let mesh = grid2d(4, 3, 0.0, 0);
        mesh.validate();
        assert_eq!(mesh.n(), 12);
        // Edges: 3*3 horizontal rows? horizontal: (4-1)*3 = 9, vertical: 4*(3-1) = 8.
        assert_eq!(mesh.m(), 17);
        // Corner has degree 2, interior degree 4.
        assert_eq!(mesh.graph.degree(0), 2);
        assert_eq!(mesh.graph.degree(5), 4);
    }

    #[test]
    fn grid3d_structure() {
        let mesh = grid3d(3, 3, 3, 0.0, 0);
        mesh.validate();
        assert_eq!(mesh.n(), 27);
        // 3 directions × 2×3×3 per direction = 54 edges.
        assert_eq!(mesh.m(), 54);
        // Center vertex (1,1,1) has degree 6.
        assert_eq!(mesh.graph.degree(13), 6);
    }

    #[test]
    fn jitter_moves_points_but_keeps_graph() {
        let a = grid2d(5, 5, 0.0, 1);
        let b = grid2d(5, 5, 0.3, 1);
        assert_eq!(a.graph, b.graph);
        assert_ne!(a.points, b.points);
    }

    #[test]
    fn degenerate_1d_grids() {
        let mesh = grid2d(6, 1, 0.0, 0);
        assert_eq!(mesh.m(), 5);
        let mesh = grid3d(1, 1, 4, 0.0, 0);
        assert_eq!(mesh.m(), 3);
    }
}
