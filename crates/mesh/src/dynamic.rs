//! Time-stepped (dynamic) workloads: deterministic scenario generators
//! that evolve any static mesh's geometry or weights over discrete steps.
//!
//! A [`DynamicWorkload`] wraps a base [`Mesh`] (from any generator in this
//! crate) with a [`Scenario`] and a seed. Every step is a *closed-form*
//! function of `(base, scenario, seed, t)` — no state is carried between
//! steps — so any step can be generated in O(n) random access, and step
//! determinism (same seed + step ⇒ bitwise-identical points and weights)
//! holds by construction. The mesh *topology* is fixed across steps, as in
//! a Lagrangian simulation whose mesh moves with the material: only the
//! coordinates (and, for hotspot churn, the node weights) change.
//!
//! These workloads exist to exercise the repartitioning subsystem
//! (DESIGN.md §5): a partitioner that reuses its previous solution should
//! track the drift with low migration, which `geographer_graph`'s
//! migration metrics quantify.

use geographer_geometry::{Point, SplitMix64};

use crate::Mesh;

/// How the base mesh evolves per step. All distances are expressed in
/// *domain units*: fractions of the base bounding box's extent, so the
/// same scenario parameters work for any generator's output scale.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// Uniform advection: every point translates by `velocity` (in domain
    /// units per step), wrapping around the base bounding box like a torus
    /// — the classic transport benchmark.
    Advection {
        /// Displacement per step, as a fraction of the bbox extent per axis.
        velocity: [f64; 2],
    },
    /// Rigid rotation of the whole point set about the bounding-box center
    /// by `omega` radians per step. Pairwise distances are preserved
    /// exactly, so partition *shapes* should simply rotate along.
    Rotation {
        /// Rotation angle per step in radians.
        omega: f64,
    },
    /// Cluster drift/merge: `clusters` seeded attractors each move along a
    /// straight line (speed in domain units per step, reflecting off the
    /// bounding-box walls), and every point rigidly follows the attractor
    /// nearest to it at step 0. Attractor paths cross over time, so
    /// clusters drift, collide, and merge — the scenario behind the
    /// paper's reuse claim.
    ClusterDrift {
        /// Number of attractors.
        clusters: usize,
        /// Attractor speed per step, as a fraction of the bbox extent.
        speed: f64,
    },
    /// Hotspot churn: geometry is fixed; node weights are multiplied by
    /// `1 + boost·exp(−d²/2r²)` around a hotspot that orbits the domain
    /// center — a load spike moving through an otherwise static mesh
    /// (adaptive refinement, moving boundary condition, …).
    HotspotChurn {
        /// Hotspot radius `r`, as a fraction of the bbox extent.
        radius: f64,
        /// Peak weight multiplier is `1 + boost`.
        boost: f64,
    },
}

impl Scenario {
    /// Display name for benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Advection { .. } => "advection",
            Scenario::Rotation { .. } => "rotation",
            Scenario::ClusterDrift { .. } => "cluster-drift",
            Scenario::HotspotChurn { .. } => "hotspot-churn",
        }
    }
}

/// A base mesh plus the scenario evolving it. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    /// The step-0 mesh (any generator's output).
    pub base: Mesh<2>,
    /// How it evolves.
    pub scenario: Scenario,
    /// Seed for the scenario's random choices (attractor placement,
    /// hotspot phase). The *same* seed always yields the same evolution.
    pub seed: u64,
    /// Cached bbox corners of the base points.
    lo: [f64; 2],
    hi: [f64; 2],
}

/// Reflect `x` into `[lo, hi]` (triangle-wave fold — the path of a
/// particle bouncing off the interval's walls).
fn reflect(x: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= 0.0 {
        return lo;
    }
    let r = (x - lo).rem_euclid(2.0 * span);
    if r < span {
        lo + r
    } else {
        lo + 2.0 * span - r
    }
}

impl DynamicWorkload {
    /// Wrap `base` with a scenario. `seed` fixes every random choice the
    /// scenario makes.
    pub fn new(base: Mesh<2>, scenario: Scenario, seed: u64) -> Self {
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for p in &base.points {
            for d in 0..2 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        if base.points.is_empty() {
            (lo, hi) = ([0.0; 2], [1.0; 2]);
        }
        DynamicWorkload { base, scenario, seed, lo, hi }
    }

    /// Extent of the base bounding box per axis.
    fn span(&self) -> [f64; 2] {
        [
            (self.hi[0] - self.lo[0]).max(f64::MIN_POSITIVE),
            (self.hi[1] - self.lo[1]).max(f64::MIN_POSITIVE),
        ]
    }

    /// The attractors of a [`Scenario::ClusterDrift`] at step `t`:
    /// seeded start position + straight-line motion, reflected off the
    /// bounding-box walls.
    fn attractors_at(&self, clusters: usize, speed: f64, t: usize) -> Vec<[f64; 2]> {
        let mut rng = SplitMix64::new(self.seed ^ 0xC1D5_7E2F_0A3B_9D41);
        let span = self.span();
        (0..clusters)
            .map(|_| {
                let start = [
                    self.lo[0] + rng.next_f64() * span[0],
                    self.lo[1] + rng.next_f64() * span[1],
                ];
                let angle = rng.next_f64() * std::f64::consts::TAU;
                let vel = [angle.cos() * speed * span[0], angle.sin() * speed * span[1]];
                [
                    reflect(start[0] + t as f64 * vel[0], self.lo[0], self.hi[0]),
                    reflect(start[1] + t as f64 * vel[1], self.lo[1], self.hi[1]),
                ]
            })
            .collect()
    }

    /// Hotspot center at step `t`: orbiting the domain center at 0.35×span
    /// radius, 0.5 rad/step, with a seeded starting phase.
    fn hotspot_at(&self, t: usize) -> [f64; 2] {
        let mut rng = SplitMix64::new(self.seed ^ 0x9F2D_63A1_44B7_E05C);
        let phase0 = rng.next_f64() * std::f64::consts::TAU;
        let span = self.span();
        let center =
            [(self.lo[0] + self.hi[0]) * 0.5, (self.lo[1] + self.hi[1]) * 0.5];
        let phase = phase0 + 0.5 * t as f64;
        [
            center[0] + 0.35 * span[0] * phase.cos(),
            center[1] + 0.35 * span[1] * phase.sin(),
        ]
    }

    /// Point coordinates at step `t` (`t = 0` is the base mesh, bitwise).
    pub fn points_at(&self, t: usize) -> Vec<Point<2>> {
        if t == 0 {
            return self.base.points.clone();
        }
        let span = self.span();
        match &self.scenario {
            Scenario::Advection { velocity } => self
                .base
                .points
                .iter()
                .map(|p| {
                    let mut c = [0.0; 2];
                    for d in 0..2 {
                        // Torus wrap in normalized coordinates.
                        let u = (p[d] - self.lo[d]) / span[d] + t as f64 * velocity[d];
                        c[d] = self.lo[d] + u.rem_euclid(1.0) * span[d];
                    }
                    Point::new(c)
                })
                .collect(),
            Scenario::Rotation { omega } => {
                let angle = *omega * t as f64;
                let (sin, cos) = angle.sin_cos();
                let cx = (self.lo[0] + self.hi[0]) * 0.5;
                let cy = (self.lo[1] + self.hi[1]) * 0.5;
                self.base
                    .points
                    .iter()
                    .map(|p| {
                        let (x, y) = (p[0] - cx, p[1] - cy);
                        Point::new([cx + x * cos - y * sin, cy + x * sin + y * cos])
                    })
                    .collect()
            }
            Scenario::ClusterDrift { clusters, speed } => {
                let clusters = (*clusters).max(1);
                let start = self.attractors_at(clusters, *speed, 0);
                let now = self.attractors_at(clusters, *speed, t);
                self.base
                    .points
                    .iter()
                    .map(|p| {
                        // Membership is fixed at step 0: the point rigidly
                        // follows its initial nearest attractor.
                        let mut best = 0usize;
                        let mut best_d = f64::INFINITY;
                        for (j, a) in start.iter().enumerate() {
                            let d = (p[0] - a[0]).powi(2) + (p[1] - a[1]).powi(2);
                            if d < best_d {
                                best_d = d;
                                best = j;
                            }
                        }
                        Point::new([
                            p[0] + now[best][0] - start[best][0],
                            p[1] + now[best][1] - start[best][1],
                        ])
                    })
                    .collect()
            }
            Scenario::HotspotChurn { .. } => self.base.points.clone(),
        }
    }

    /// Node weights at step `t` (`t = 0` is the base mesh, bitwise).
    pub fn weights_at(&self, t: usize) -> Vec<f64> {
        match &self.scenario {
            Scenario::HotspotChurn { radius, boost } if t > 0 => {
                let span = self.span();
                let r = radius.max(1e-9) * span[0].max(span[1]);
                let h = self.hotspot_at(t);
                self.base
                    .weights
                    .iter()
                    .zip(&self.base.points)
                    .map(|(&w, p)| {
                        let d2 = (p[0] - h[0]).powi(2) + (p[1] - h[1]).powi(2);
                        w * (1.0 + boost * (-d2 / (2.0 * r * r)).exp())
                    })
                    .collect()
            }
            _ => self.base.weights.clone(),
        }
    }

    /// The full mesh at step `t`: evolved coordinates and weights over the
    /// *fixed* base topology.
    pub fn mesh_at(&self, t: usize) -> Mesh<2> {
        Mesh {
            points: self.points_at(t),
            weights: self.weights_at(t),
            graph: self.base.graph.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delaunay_unit_square;

    fn workload(scenario: Scenario) -> DynamicWorkload {
        DynamicWorkload::new(delaunay_unit_square(400, 9), scenario, 123)
    }

    fn all_scenarios() -> Vec<Scenario> {
        vec![
            Scenario::Advection { velocity: [0.03, 0.011] },
            Scenario::Rotation { omega: 0.2 },
            Scenario::ClusterDrift { clusters: 4, speed: 0.02 },
            Scenario::HotspotChurn { radius: 0.15, boost: 8.0 },
        ]
    }

    #[test]
    fn step_zero_is_the_base_mesh() {
        for sc in all_scenarios() {
            let wl = workload(sc);
            assert_eq!(wl.points_at(0), wl.base.points);
            assert_eq!(wl.weights_at(0), wl.base.weights);
        }
    }

    #[test]
    fn steps_are_deterministic_and_random_access() {
        for sc in all_scenarios() {
            let wl = workload(sc.clone());
            let wl2 = workload(sc); // fresh instance, same seed
            for t in [1usize, 3, 7] {
                assert_eq!(wl.points_at(t), wl.points_at(t), "repeat call differs");
                assert_eq!(wl.points_at(t), wl2.points_at(t), "fresh instance differs");
                assert_eq!(wl.weights_at(t), wl2.weights_at(t));
            }
        }
    }

    #[test]
    fn geometry_scenarios_actually_move_points() {
        for sc in all_scenarios() {
            let wl = workload(sc.clone());
            let moved = wl
                .points_at(3)
                .iter()
                .zip(&wl.base.points)
                .filter(|(a, b)| a.dist(b) > 1e-12)
                .count();
            match sc {
                Scenario::HotspotChurn { .. } => assert_eq!(moved, 0, "churn is weight-only"),
                _ => assert!(moved > 350, "{}: only {moved} points moved", sc.name()),
            }
        }
    }

    #[test]
    fn advection_wraps_inside_the_base_bbox() {
        let wl = workload(Scenario::Advection { velocity: [0.13, 0.07] });
        for t in 0..20 {
            for p in wl.points_at(t) {
                assert!(p[0] >= wl.lo[0] - 1e-9 && p[0] <= wl.hi[0] + 1e-9);
                assert!(p[1] >= wl.lo[1] - 1e-9 && p[1] <= wl.hi[1] + 1e-9);
            }
        }
    }

    #[test]
    fn rotation_preserves_pairwise_distances() {
        let wl = workload(Scenario::Rotation { omega: 0.37 });
        let p5 = wl.points_at(5);
        for (i, j) in [(0usize, 100usize), (7, 300), (42, 199)] {
            let before = wl.base.points[i].dist(&wl.base.points[j]);
            let after = p5[i].dist(&p5[j]);
            assert!((before - after).abs() < 1e-9, "rotation must be rigid");
        }
    }

    #[test]
    fn hotspot_churn_boosts_weights_near_a_moving_center() {
        let wl = workload(Scenario::HotspotChurn { radius: 0.12, boost: 10.0 });
        let w1 = wl.weights_at(1);
        let w4 = wl.weights_at(4);
        // Weights stay positive and the hotspot really boosts somebody.
        assert!(w1.iter().all(|w| *w >= 1.0));
        assert!(w1.iter().cloned().fold(0.0, f64::max) > 5.0, "peak boost missing");
        // The hotspot moves: the boosted region differs between steps.
        assert_ne!(w1, w4);
        // The mesh stays valid (positive finite weights, same topology).
        wl.mesh_at(4).validate();
    }

    #[test]
    fn cluster_drift_moves_clusters_rigidly() {
        let wl = workload(Scenario::ClusterDrift { clusters: 3, speed: 0.05 });
        let p6 = wl.points_at(6);
        // Points sharing an attractor keep their relative offsets; overall
        // the displacement field has at most `clusters` distinct vectors.
        let mut displacements: Vec<(i64, i64)> = wl
            .base
            .points
            .iter()
            .zip(&p6)
            .map(|(a, b)| {
                (((b[0] - a[0]) * 1e9).round() as i64, ((b[1] - a[1]) * 1e9).round() as i64)
            })
            .collect();
        displacements.sort_unstable();
        displacements.dedup();
        assert!(
            displacements.len() <= 3,
            "expected ≤ 3 rigid displacement vectors, got {}",
            displacements.len()
        );
    }

    #[test]
    fn reflect_stays_in_range() {
        for i in -100..100 {
            let x = i as f64 * 0.173;
            let r = reflect(x, 0.25, 1.5);
            assert!((0.25..=1.5).contains(&r), "reflect({x}) = {r}");
        }
        // Identity inside the interval.
        assert!((reflect(0.7, 0.25, 1.5) - 0.7).abs() < 1e-12);
    }
}
