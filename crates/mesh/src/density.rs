//! Density-controlled point sampling in the unit square.
//!
//! The DIMACS meshes the paper evaluates (hugetric/hugetrace/hugebubbles,
//! the FEM airfoil meshes) are *adaptively refined*: vertex density varies
//! by orders of magnitude across the domain. We reproduce that structure by
//! rejection-sampling points against a density field and Delaunay-
//! triangulating the result.

use geographer_geometry::{Point, SplitMix64};

/// Sample `n` points in the unit square with probability proportional to
/// `density` (values in `(0, 1]`; higher = finer mesh).
///
/// # Panics
/// If the sampler cannot reach `n` acceptances (density ≈ 0 everywhere).
pub fn sample_by_density<F>(n: usize, seed: u64, density: F) -> Vec<Point<2>>
where
    F: Fn(Point<2>) -> f64,
{
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n);
    let mut attempts: u64 = 0;
    let max_attempts = (n as u64).saturating_mul(10_000).max(1_000_000);
    while out.len() < n {
        attempts += 1;
        assert!(
            attempts < max_attempts,
            "density too small: {} acceptances after {attempts} attempts",
            out.len()
        );
        let p = Point::new([rng.next_f64(), rng.next_f64()]);
        let d = density(p).clamp(0.0, 1.0);
        if rng.next_f64() < d {
            out.push(p);
        }
    }
    out
}

/// Density field of the *bubbles* family: a baseline with several circular
/// high-resolution regions (mimicking `hugebubbles`).
pub fn bubbles_density(centers: &[(f64, f64, f64)]) -> impl Fn(Point<2>) -> f64 + '_ {
    move |p| {
        let mut d: f64 = 0.02;
        for &(cx, cy, r) in centers {
            let dist = ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt();
            if dist < r {
                // Smoothly refined towards the bubble boundary.
                let t = (dist / r).powi(2);
                d = d.max(0.1 + 0.9 * t);
            }
        }
        d
    }
}

/// Density field of the *trace* family: refinement along a meandering
/// curve (mimicking `hugetrace`, which refines along a moving front).
pub fn trace_density(p: Point<2>) -> f64 {
    // Distance to the curve y = 0.5 + 0.3 sin(3πx).
    let curve_y = 0.5 + 0.3 * (3.0 * std::f64::consts::PI * p[0]).sin();
    let dist = (p[1] - curve_y).abs();
    (1.0 - dist * 4.0).clamp(0.0, 1.0).powi(2).max(0.015)
}

/// Density field of the *airfoil* family: strong refinement around a thin
/// wing-like profile (mimicking NACA0015/M6/AS365 FEM meshes).
pub fn airfoil_density(p: Point<2>) -> f64 {
    // Chord from (0.25, 0.5) to (0.75, 0.5), thickness tapering to the tail.
    let x = (p[0] - 0.25) / 0.5;
    if !(0.0..=1.0).contains(&x) {
        let dist = if x < 0.0 {
            ((p[0] - 0.25).powi(2) + (p[1] - 0.5).powi(2)).sqrt()
        } else {
            ((p[0] - 0.75).powi(2) + (p[1] - 0.5).powi(2)).sqrt()
        };
        return (1.0 - dist * 3.0).clamp(0.0, 1.0).powi(3).max(0.01);
    }
    // NACA-ish half thickness.
    let half = 0.15 * (x.sqrt() * (1.0 - x) * 2.0).max(0.0) * 0.5;
    let dist = ((p[1] - 0.5).abs() - half).max(0.0);
    (1.0 - dist * 3.0).clamp(0.0, 1.0).powi(3).max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_returns_exactly_n_points_in_square() {
        let pts = sample_by_density(500, 1, |_| 0.5);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!((0.0..1.0).contains(&p[0]) && (0.0..1.0).contains(&p[1]));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_by_density(100, 9, trace_density);
        let b = sample_by_density(100, 9, trace_density);
        assert_eq!(a, b);
    }

    #[test]
    fn density_concentrates_points() {
        // With trace density, points near the curve should dominate.
        let pts = sample_by_density(2000, 2, trace_density);
        let near = pts
            .iter()
            .filter(|p| {
                let cy = 0.5 + 0.3 * (3.0 * std::f64::consts::PI * p[0]).sin();
                (p[1] - cy).abs() < 0.15
            })
            .count();
        assert!(
            near > pts.len() / 2,
            "expected refinement near the trace curve, got {near}/{}",
            pts.len()
        );
    }

    #[test]
    fn bubbles_density_peaks_in_bubbles() {
        let centers = [(0.5, 0.5, 0.2)];
        let f = bubbles_density(&centers);
        assert!(f(Point::new([0.69, 0.5])) > 0.5, "near bubble boundary: high");
        assert!(f(Point::new([0.05, 0.05])) < 0.05, "far from bubbles: low");
    }

    #[test]
    #[should_panic(expected = "density too small")]
    fn zero_density_panics() {
        let _ = sample_by_density(10, 1, |_| 0.0);
    }
}
