//! Named instance families matching the paper's benchmark collection, at
//! reproduction scale. Each function is deterministic in `(n, seed)`.

use geographer_graph::CsrGraph;

use crate::climate::climate25d;
use crate::delaunay::{delaunay_edges, delaunay_unit_square};
use crate::density::{airfoil_density, bubbles_density, sample_by_density, trace_density};
use crate::grid::grid3d;
use crate::knn3d::{knn3d, PointCloud};
use crate::rgg::rgg2d;
use crate::Mesh;

/// Graph class, mirroring the three aggregation classes of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshClass {
    /// 2D meshes (DIMACS analogues).
    Dimacs2d,
    /// 2.5D weighted climate meshes.
    Climate25d,
    /// 3D meshes (Alya / 3D Delaunay analogues).
    ThreeD,
}

/// A named instance: identifies generator + scale for the experiment
/// tables.
#[derive(Debug, Clone)]
pub struct Instance2d {
    /// Display name used in the reproduced tables.
    pub name: &'static str,
    /// The generated mesh.
    pub mesh: Mesh<2>,
}

/// A named 3D instance.
#[derive(Debug, Clone)]
pub struct Instance3d {
    /// Display name used in the reproduced tables.
    pub name: &'static str,
    /// The generated mesh.
    pub mesh: Mesh<3>,
}

fn density_mesh(n: usize, seed: u64, density: impl Fn(geographer_geometry::Point<2>) -> f64) -> Mesh<2> {
    let points = sample_by_density(n, seed, density);
    let edges = delaunay_edges(&points);
    let graph = CsrGraph::from_edges(n, &edges);
    Mesh { points, weights: vec![1.0; n], graph }
}

/// `hugetric`-like: adaptively refined triangular mesh with a few circular
/// refinement regions.
pub fn tric_like(n: usize, seed: u64) -> Mesh<2> {
    let centers = [(0.3, 0.4, 0.25), (0.75, 0.7, 0.2)];
    density_mesh(n, seed, bubbles_density(&centers))
}

/// `hugetrace`-like: refinement along a moving front.
pub fn trace_like(n: usize, seed: u64) -> Mesh<2> {
    density_mesh(n, seed, trace_density)
}

/// `hugebubbles`-like: many refinement bubbles.
pub fn bubbles_like(n: usize, seed: u64) -> Mesh<2> {
    let centers = [
        (0.2, 0.2, 0.12),
        (0.8, 0.25, 0.1),
        (0.5, 0.55, 0.15),
        (0.25, 0.8, 0.1),
        (0.85, 0.8, 0.12),
    ];
    density_mesh(n, seed, bubbles_density(&centers))
}

/// FEM airfoil mesh (NACA0015/M6/AS365 analogue).
pub fn airfoil_like(n: usize, seed: u64) -> Mesh<2> {
    density_mesh(n, seed, airfoil_density)
}

/// The full 2D instance list used by the Fig. 2(a) / Table 2 analogues.
pub fn dimacs2d_suite(n: usize, seed: u64) -> Vec<Instance2d> {
    vec![
        Instance2d { name: "tric-like", mesh: tric_like(n, seed) },
        Instance2d { name: "trace-like", mesh: trace_like(n, seed + 1) },
        Instance2d { name: "bubbles-like", mesh: bubbles_like(n, seed + 2) },
        Instance2d { name: "airfoil-like", mesh: airfoil_like(n, seed + 3) },
        Instance2d { name: "delaunay", mesh: delaunay_unit_square(n, seed + 4) },
        Instance2d { name: "rgg2d", mesh: rgg2d(n, None, seed + 5) },
    ]
}

/// The 2.5D climate suite used by the Fig. 2(b) analogue.
pub fn climate_suite(n: usize, seed: u64) -> Vec<Instance2d> {
    vec![
        Instance2d { name: "fesom-like-a", mesh: climate25d(n, 40, seed) },
        Instance2d { name: "fesom-like-b", mesh: climate25d(n, 20, seed + 1) },
    ]
}

/// The 3D suite used by the Fig. 2(c) analogue.
pub fn three_d_suite(n: usize, seed: u64) -> Vec<Instance3d> {
    let side = (n as f64).powf(1.0 / 3.0).round() as usize;
    vec![
        Instance3d { name: "delaunay3d-like", mesh: knn3d(n, 6, PointCloud::Uniform, seed) },
        Instance3d {
            name: "alya-like",
            mesh: knn3d(n, 6, PointCloud::Clustered { clusters: 5 }, seed + 1),
        },
        Instance3d { name: "grid3d", mesh: grid3d(side, side, side, 0.25, seed + 2) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_2d_families_valid() {
        for inst in dimacs2d_suite(400, 1) {
            inst.mesh.validate();
            assert_eq!(inst.mesh.n(), 400, "{} wrong size", inst.name);
        }
    }

    #[test]
    fn climate_suite_weighted() {
        for inst in climate_suite(300, 2) {
            inst.mesh.validate();
            let minw = inst.mesh.weights.iter().cloned().fold(f64::INFINITY, f64::min);
            let maxw = inst.mesh.weights.iter().cloned().fold(0.0, f64::max);
            assert!(maxw > 2.0 * minw, "{}: weights should vary", inst.name);
        }
    }

    #[test]
    fn three_d_suite_valid() {
        for inst in three_d_suite(343, 3) {
            inst.mesh.validate();
            assert!(inst.mesh.n() >= 300, "{} too small", inst.name);
        }
    }

    #[test]
    fn refined_meshes_have_nonuniform_density() {
        // The refined families must show a wide spread of local edge
        // lengths (that's what "adaptively refined" means).
        let mesh = trace_like(800, 4);
        let mut lengths: Vec<f64> = Vec::new();
        for v in 0..mesh.n() as u32 {
            for &u in mesh.graph.neighbors(v) {
                if v < u {
                    lengths.push(mesh.points[v as usize].dist(&mesh.points[u as usize]));
                }
            }
        }
        lengths.sort_by(f64::total_cmp);
        let p10 = lengths[lengths.len() / 10];
        let p90 = lengths[9 * lengths.len() / 10];
        assert!(p90 / p10 > 2.5, "edge length spread too small: {}", p90 / p10);
    }
}
