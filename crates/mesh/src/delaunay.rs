//! 2D Delaunay triangulation (Bowyer–Watson, incremental, with walk-based
//! point location).
//!
//! This is the generator behind the paper's `delaunayX` series: Delaunay
//! triangulations of uniformly random points in the unit square. Insertion
//! order follows the Hilbert curve, so the locate step walks O(1) triangles
//! in expectation and the whole construction is O(n log n)-ish in practice.
//!
//! Robustness: predicates are plain f64 determinants. The generators feed
//! random (hence generic-position) points, for which this is ample; this is
//! a workload generator, not a general-purpose CGAL replacement.

use geographer_geometry::{Aabb, Point};
use geographer_graph::CsrGraph;
use geographer_sfc::HilbertMapper;

use crate::Mesh;

/// One triangle: vertices (CCW) and the neighbour opposite each vertex
/// (`-1` = convex hull / none).
#[derive(Debug, Clone, Copy)]
struct Tri {
    v: [u32; 3],
    nbr: [i32; 3],
    alive: bool,
}

/// 2·(signed area) of triangle (a, b, c); positive iff CCW.
#[inline]
fn orient2d(a: Point<2>, b: Point<2>, c: Point<2>) -> f64 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

/// In-circumcircle predicate for CCW triangle (a, b, c): positive iff `p`
/// is strictly inside.
#[inline]
fn in_circle(a: Point<2>, b: Point<2>, c: Point<2>, p: Point<2>) -> f64 {
    let (ax, ay) = (a[0] - p[0], a[1] - p[1]);
    let (bx, by) = (b[0] - p[0], b[1] - p[1]);
    let (cx, cy) = (c[0] - p[0], c[1] - p[1]);
    let a2 = ax * ax + ay * ay;
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    ax * (by * c2 - b2 * cy) - ay * (bx * c2 - b2 * cx) + a2 * (bx * cy - by * cx)
}

/// Incremental Delaunay triangulator.
struct Triangulator {
    /// All points; the last three are the super-triangle corners.
    pts: Vec<Point<2>>,
    tris: Vec<Tri>,
    free: Vec<usize>,
    /// Triangle used as the walk start (most recently created).
    last: usize,
}

impl Triangulator {
    fn new(points: &[Point<2>]) -> Self {
        let bb = Aabb::from_points(points).expect("need at least one point");
        let c = bb.center();
        let r = bb.diagonal().max(1e-12) * 16.0;
        // Super-triangle comfortably containing every input point.
        let s0 = Point::new([c[0] - 2.0 * r, c[1] - r]);
        let s1 = Point::new([c[0] + 2.0 * r, c[1] - r]);
        let s2 = Point::new([c[0], c[1] + 2.0 * r]);
        let mut pts = points.to_vec();
        let base = pts.len() as u32;
        pts.extend_from_slice(&[s0, s1, s2]);
        let tris = vec![Tri { v: [base, base + 1, base + 2], nbr: [-1, -1, -1], alive: true }];
        Triangulator { pts, tris, free: Vec::new(), last: 0 }
    }

    #[inline]
    fn tri_pts(&self, t: usize) -> [Point<2>; 3] {
        let v = self.tris[t].v;
        [self.pts[v[0] as usize], self.pts[v[1] as usize], self.pts[v[2] as usize]]
    }

    /// Walk from `self.last` to a triangle containing `p`.
    fn locate(&self, p: Point<2>) -> usize {
        let mut t = self.last;
        if !self.tris[t].alive {
            t = self.tris.iter().position(|x| x.alive).expect("no live triangle");
        }
        let mut hops = 0usize;
        'walk: loop {
            hops += 1;
            if hops > self.tris.len() * 2 + 16 {
                // Numerical corner case: fall back to exhaustive search.
                for (i, tri) in self.tris.iter().enumerate() {
                    if tri.alive && self.contains(i, p) {
                        return i;
                    }
                }
                panic!("locate failed: point outside triangulation");
            }
            let [a, b, c] = self.tri_pts(t);
            let edges = [(a, b, 2usize), (b, c, 0usize), (c, a, 1usize)];
            for (u, v, opp) in edges {
                if orient2d(u, v, p) < 0.0 {
                    let n = self.tris[t].nbr[opp];
                    if n < 0 {
                        // On/outside hull of super-triangle — shouldn't
                        // happen, treat current triangle as containing.
                        return t;
                    }
                    t = n as usize;
                    continue 'walk;
                }
            }
            return t;
        }
    }

    fn contains(&self, t: usize, p: Point<2>) -> bool {
        let [a, b, c] = self.tri_pts(t);
        orient2d(a, b, p) >= 0.0 && orient2d(b, c, p) >= 0.0 && orient2d(c, a, p) >= 0.0
    }

    fn alloc(&mut self, tri: Tri) -> usize {
        if let Some(i) = self.free.pop() {
            self.tris[i] = tri;
            i
        } else {
            self.tris.push(tri);
            self.tris.len() - 1
        }
    }

    /// Insert point with id `pid` (must index into `self.pts`).
    fn insert(&mut self, pid: u32) {
        let p = self.pts[pid as usize];
        let seed = self.locate(p);

        // Grow the cavity: all triangles whose circumcircle contains p.
        let mut bad = vec![seed];
        // geo-analyze: allow(hash-container): membership-only set, never iterated — cavity order comes from the `stack`/`bad` vectors.
        let mut in_cavity = std::collections::HashSet::new();
        in_cavity.insert(seed);
        let mut stack = vec![seed];
        while let Some(t) = stack.pop() {
            for &n in &self.tris[t].nbr {
                if n < 0 {
                    continue;
                }
                let n = n as usize;
                if in_cavity.contains(&n) {
                    continue;
                }
                let [a, b, c] = self.tri_pts(n);
                if in_circle(a, b, c, p) > 0.0 {
                    in_cavity.insert(n);
                    bad.push(n);
                    stack.push(n);
                }
            }
        }

        // Boundary of the cavity: directed edges (u, v) with the outside
        // neighbour, oriented CCW around the cavity.
        let mut boundary: Vec<(u32, u32, i32)> = Vec::new();
        for &t in &bad {
            let tri = self.tris[t];
            for i in 0..3 {
                let n = tri.nbr[i];
                let outside = n < 0 || !in_cavity.contains(&(n as usize));
                if outside {
                    // Edge opposite vertex i is (v[i+1], v[i+2]).
                    let u = tri.v[(i + 1) % 3];
                    let v = tri.v[(i + 2) % 3];
                    boundary.push((u, v, n));
                }
            }
        }

        // Retire cavity triangles.
        for &t in &bad {
            self.tris[t].alive = false;
            self.free.push(t);
        }

        // Fan from p to each boundary edge; wire neighbours. The cavity
        // boundary is a simple CCW cycle, so each vertex starts exactly
        // one boundary edge: a sorted (start vertex → fan triangle) table
        // gives a deterministic, binary-searchable successor lookup.
        let mut start_to_tri: Vec<(u32, usize)> = Vec::with_capacity(boundary.len());
        let mut created = Vec::with_capacity(boundary.len());
        for &(u, v, outside) in &boundary {
            let t = self.alloc(Tri { v: [pid, u, v], nbr: [outside, -1, -1], alive: true });
            // Fix the outside neighbour's back-pointer across exactly the
            // shared edge {u, v} (an outside triangle can touch the cavity
            // along more than one of its edges).
            if outside >= 0 {
                let o = outside as usize;
                for i in 0..3 {
                    let a = self.tris[o].v[(i + 1) % 3];
                    let b = self.tris[o].v[(i + 2) % 3];
                    if (a == u && b == v) || (a == v && b == u) {
                        self.tris[o].nbr[i] = t as i32;
                    }
                }
            }
            start_to_tri.push((u, t));
            created.push(t);
        }
        start_to_tri.sort_unstable();
        // Neighbours within the fan: triangle (p,u,v) borders the successor
        // (p,v,w) along edge (p,v), i.e. the unique boundary edge starting
        // at v. In (p,u,v) the shared edge is opposite u (slot 1); in
        // (p,v,w) it is opposite w (slot 2).
        for &t in &created {
            let [_, _u, v] = self.tris[t].v;
            let at = start_to_tri
                .binary_search_by_key(&v, |&(start, _)| start)
                .expect("cavity boundary must be a closed cycle");
            let succ = start_to_tri[at].1;
            self.tris[t].nbr[1] = succ as i32;
            self.tris[succ].nbr[2] = t as i32;
        }
        self.last = *created.last().expect("cavity produced triangles");
    }

    /// All edges between real points (super-triangle corners excluded).
    fn edges(&self, n_real: u32) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for tri in &self.tris {
            if !tri.alive {
                continue;
            }
            for i in 0..3 {
                let u = tri.v[i];
                let v = tri.v[(i + 1) % 3];
                if u < v && u < n_real && v < n_real {
                    edges.push((u, v));
                }
            }
        }
        edges
    }
}

/// Delaunay-triangulate `points` and return the undirected edge list.
///
/// # Panics
/// On fewer than 3 points.
pub fn delaunay_edges(points: &[Point<2>]) -> Vec<(u32, u32)> {
    assert!(points.len() >= 3, "need at least 3 points");
    // Hilbert-ordered insertion for walk locality.
    let bb = Aabb::from_points(points).expect("nonempty");
    let mapper = HilbertMapper::new(bb, 16);
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    order.sort_by_key(|&i| mapper.key_of(&points[i as usize]));

    let mut tr = Triangulator::new(points);
    for &pid in &order {
        tr.insert(pid);
    }
    tr.edges(points.len() as u32)
}

/// The `delaunayX` analogue: Delaunay triangulation of `n` uniformly random
/// points in the unit square (deterministic in `seed`).
pub fn delaunay_unit_square(n: usize, seed: u64) -> Mesh<2> {
    use geographer_geometry::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let points: Vec<Point<2>> =
        (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
    let edges = delaunay_edges(&points);
    let graph = CsrGraph::from_edges(n, &edges);
    let weights = vec![1.0; n];
    Mesh { points, weights, graph }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect()
    }

    /// Brute-force check of the empty-circumcircle property on the final
    /// triangulation.
    fn assert_delaunay(points: &[Point<2>], tr: &Triangulator) {
        let n = points.len() as u32;
        for tri in &tr.tris {
            if !tri.alive || tri.v.iter().any(|&v| v >= n) {
                continue;
            }
            let [a, b, c] =
                [points[tri.v[0] as usize], points[tri.v[1] as usize], points[tri.v[2] as usize]];
            for (i, p) in points.iter().enumerate() {
                if tri.v.contains(&(i as u32)) {
                    continue;
                }
                assert!(
                    in_circle(a, b, c, *p) <= 1e-9,
                    "point {i} inside circumcircle of {:?}",
                    tri.v
                );
            }
        }
    }

    #[test]
    fn triangle_of_three_points() {
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([0.0, 1.0]),
        ];
        let edges = delaunay_edges(&pts);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn square_gets_one_diagonal() {
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.01]), // tiny perturbation avoids cocircularity
            Point::new([1.0, 1.0]),
            Point::new([0.0, 0.99]),
        ];
        let edges = delaunay_edges(&pts);
        assert_eq!(edges.len(), 5, "4 hull edges + 1 diagonal: {edges:?}");
    }

    #[test]
    fn delaunay_property_small() {
        let pts = random_points(60, 42);
        let bb = Aabb::from_points(&pts).unwrap();
        let mapper = HilbertMapper::new(bb, 16);
        let mut order: Vec<u32> = (0..pts.len() as u32).collect();
        order.sort_by_key(|&i| mapper.key_of(&pts[i as usize]));
        let mut tr = Triangulator::new(&pts);
        for &pid in &order {
            tr.insert(pid);
        }
        assert_delaunay(&pts, &tr);
    }

    #[test]
    fn euler_formula_on_random_input() {
        // For a triangulation of points in general position with h hull
        // vertices: m = 3n - 3 - h. We don't know h, but m must satisfy
        // 2n - 3 <= m <= 3n - 6 for any planar triangulation-ish graph.
        let n = 500;
        let mesh = delaunay_unit_square(n, 7);
        mesh.validate();
        let m = mesh.m();
        assert!(m >= 2 * n - 3, "too few edges: {m}");
        assert!(m <= 3 * n - 6, "planarity violated: {m}");
        // Average degree of a Delaunay triangulation approaches 6.
        let avg = 2.0 * m as f64 / n as f64;
        assert!(avg > 5.0 && avg < 6.0, "unexpected average degree {avg}");
    }

    #[test]
    fn connected_output() {
        let mesh = delaunay_unit_square(300, 3);
        let (cc, _) = geographer_graph::connected_components(&mesh.graph);
        assert_eq!(cc, 1, "Delaunay triangulations are connected");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = delaunay_unit_square(100, 5);
        let b = delaunay_unit_square(100, 5);
        assert_eq!(a.graph, b.graph);
        let c = delaunay_unit_square(100, 6);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn handles_clustered_points() {
        // Two tight clusters; stresses the walk across empty space.
        let mut pts = Vec::new();
        let mut rng = SplitMix64::new(9);
        for _ in 0..100 {
            pts.push(Point::new([rng.next_f64() * 0.01, rng.next_f64() * 0.01]));
        }
        for _ in 0..100 {
            pts.push(Point::new([
                0.9 + rng.next_f64() * 0.01,
                0.9 + rng.next_f64() * 0.01,
            ]));
        }
        let edges = delaunay_edges(&pts);
        let g = CsrGraph::from_edges(200, &edges);
        let (cc, _) = geographer_graph::connected_components(&g);
        assert_eq!(cc, 1);
    }
}
