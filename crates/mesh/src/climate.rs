//! 2.5D climate-simulation meshes (the FESOM analogue).
//!
//! The paper's motivating application (Sec. 1): atmosphere/ocean meshes are
//! partitioned in 2D, but each 2D vertex carries a *node weight* equal to
//! its number of 3D grid points (ocean depth / vertical layers). The two
//! properties that stress a partitioner — strongly non-uniform vertex
//! density (coastal refinement) and non-uniform node weights — are
//! reproduced here:
//!
//! * a synthetic "ocean" with a few continents (disks) cut out;
//! * vertex density increasing towards coastlines;
//! * node weight proportional to water depth (deep basins = many layers),
//!   shallow near coasts.

use geographer_geometry::Point;

use crate::delaunay::delaunay_edges;
use crate::density::sample_by_density;
use crate::Mesh;
use geographer_graph::CsrGraph;

/// Continent disks: (center_x, center_y, radius).
const CONTINENTS: [(f64, f64, f64); 3] =
    [(0.25, 0.3, 0.18), (0.7, 0.65, 0.22), (0.15, 0.85, 0.1)];

/// Signed distance to the nearest coastline; negative inside a continent.
fn coast_distance(p: Point<2>) -> f64 {
    CONTINENTS
        .iter()
        .map(|&(cx, cy, r)| ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt() - r)
        .fold(f64::INFINITY, f64::min)
}

/// Generate a 2.5D climate mesh with `n` ocean vertices.
///
/// Node weights model the vertical-layer count: `1 + depth_layers` where
/// depth grows with distance from the coast, capped at `max_layers`.
pub fn climate25d(n: usize, max_layers: u32, seed: u64) -> Mesh<2> {
    assert!(max_layers >= 1);
    let density = |p: Point<2>| {
        let d = coast_distance(p);
        if d <= 0.0 {
            return 0.0; // land
        }
        // Fine near the coast, coarser in the open ocean.
        (1.0 - d * 2.5).clamp(0.0, 1.0).powi(2).max(0.03)
    };
    let points = sample_by_density(n, seed, density);
    let weights: Vec<f64> = points
        .iter()
        .map(|p| {
            let d = coast_distance(*p).max(0.0);
            // Depth ramps from the coast into basins.
            1.0 + (d * 3.0 * max_layers as f64).min(max_layers as f64 - 1.0)
        })
        .collect();
    let edges = delaunay_edges(&points);
    let graph = CsrGraph::from_edges(n, &edges);
    Mesh { points, weights, graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_vertices_on_land() {
        let mesh = climate25d(800, 40, 1);
        mesh.validate();
        for p in &mesh.points {
            assert!(coast_distance(*p) > 0.0, "vertex on land at {p:?}");
        }
    }

    #[test]
    fn weights_grow_away_from_coast() {
        let mesh = climate25d(1000, 40, 2);
        // Partition vertices into near-coast and open-ocean; mean weight
        // must be clearly higher off-shore.
        let (mut near_sum, mut near_n, mut far_sum, mut far_n) = (0.0, 0, 0.0, 0);
        for (p, w) in mesh.points.iter().zip(&mesh.weights) {
            if coast_distance(*p) < 0.05 {
                near_sum += w;
                near_n += 1;
            } else if coast_distance(*p) > 0.2 {
                far_sum += w;
                far_n += 1;
            }
        }
        assert!(near_n > 0 && far_n > 0);
        assert!(far_sum / far_n as f64 > 2.0 * near_sum / near_n as f64);
    }

    #[test]
    fn weights_bounded_by_layers() {
        let max_layers = 12;
        let mesh = climate25d(500, max_layers, 3);
        for &w in &mesh.weights {
            assert!(w >= 1.0 && w <= max_layers as f64 + 1.0);
        }
    }

    #[test]
    fn mesh_mostly_connected() {
        // Continents can split the ocean locally, but the Delaunay graph of
        // the sampled points is a triangulation of all points — connected.
        let mesh = climate25d(600, 20, 4);
        let (cc, _) = geographer_graph::connected_components(&mesh.graph);
        assert_eq!(cc, 1);
    }
}
