//! 3D geometric graphs via symmetric k-nearest-neighbour connectivity.
//!
//! Substitute for the paper's 3D Delaunay triangulations (Funke et al.
//! generator) and the unstructured Alya meshes: exact 3D Delaunay needs
//! robust arithmetic beyond the scope of a workload generator, while
//! symmetric kNN graphs on the same point sets share the properties that
//! matter to a *geometric* partitioner's evaluation — bounded average
//! degree, spatially local edges, connectedness. See DESIGN.md §3.

use geographer_geometry::Point;
use geographer_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Mesh;

/// How the 3D points are distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointCloud {
    /// Uniform in the unit cube (3D Delaunay analogue).
    Uniform,
    /// Gaussian clusters around random centers (organ-like density, the
    /// Alya respiratory-mesh analogue).
    Clustered {
        /// Number of Gaussian clusters.
        clusters: usize,
    },
}

/// Build a symmetric kNN graph over `n` random 3D points.
/// Each vertex is connected to its `k` nearest neighbours; the union is
/// symmetrized. Uses a uniform grid for neighbour search.
pub fn knn3d(n: usize, k: usize, cloud: PointCloud, seed: u64) -> Mesh<3> {
    assert!(n > k, "need more points than neighbours");
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Point<3>> = match cloud {
        PointCloud::Uniform => (0..n)
            .map(|_| Point::new([rng.random(), rng.random(), rng.random()]))
            .collect(),
        PointCloud::Clustered { clusters } => {
            let centers: Vec<[f64; 3]> = (0..clusters.max(1))
                .map(|_| [rng.random(), rng.random(), rng.random()])
                .collect();
            (0..n)
                .map(|_| {
                    let c = centers[rng.random_range(0..centers.len())];
                    let mut coord = [0.0; 3];
                    for (i, x) in coord.iter_mut().enumerate() {
                        // Box-Muller-ish: sum of uniforms ≈ Gaussian spread.
                        let g: f64 = (0..4).map(|_| rng.random::<f64>()).sum::<f64>() / 2.0 - 1.0;
                        *x = (c[i] + g * 0.08).clamp(0.0, 1.0);
                    }
                    Point::new(coord)
                })
                .collect()
        }
    };

    // Grid with ~1 expected point per cell.
    let cells = ((n as f64).powf(1.0 / 3.0).ceil() as usize).max(1);
    let cell_of = |p: &Point<3>| -> [usize; 3] {
        let mut c = [0usize; 3];
        for i in 0..3 {
            c[i] = ((p[i] * cells as f64) as usize).min(cells - 1);
        }
        c
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells * cells];
    let gidx = |c: [usize; 3]| (c[2] * cells + c[1]) * cells + c[0];
    for (i, p) in points.iter().enumerate() {
        grid[gidx(cell_of(p))].push(i as u32);
    }

    let mut edges = Vec::with_capacity(n * k);
    let mut candidates: Vec<(f64, u32)> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        candidates.clear();
        // Expand the search ring until we have k neighbours and the next
        // ring cannot contain anything closer.
        let c = cell_of(p);
        let mut ring = 1usize;
        loop {
            candidates.clear();
            let lo = |v: usize| v.saturating_sub(ring);
            let hi = |v: usize| (v + ring).min(cells - 1);
            for z in lo(c[2])..=hi(c[2]) {
                for y in lo(c[1])..=hi(c[1]) {
                    for x in lo(c[0])..=hi(c[0]) {
                        for &j in &grid[gidx([x, y, z])] {
                            if j as usize != i {
                                candidates.push((p.dist_sq(&points[j as usize]), j));
                            }
                        }
                    }
                }
            }
            // The ring of width `ring` certainly contains every point
            // within ring-1 cells of distance.
            let safe_radius = (ring.saturating_sub(0)) as f64 / cells as f64;
            if candidates.len() >= k {
                candidates
                    .sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                if candidates[k - 1].0.sqrt() <= safe_radius || ring >= cells {
                    break;
                }
            } else if ring >= cells {
                break;
            }
            ring += 1;
        }
        for &(_, j) in candidates.iter().take(k) {
            let (a, b) = if (i as u32) < j { (i as u32, j) } else { (j, i as u32) };
            edges.push((a, b));
        }
    }
    let graph = CsrGraph::from_edges(n, &edges);
    Mesh { points, weights: vec![1.0; n], graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_bounds() {
        let k = 6;
        let mesh = knn3d(400, k, PointCloud::Uniform, 1);
        mesh.validate();
        // Every vertex keeps at least its own k edges.
        for v in 0..mesh.n() as u32 {
            assert!(mesh.graph.degree(v) >= k, "degree {} < k", mesh.graph.degree(v));
        }
        // Average degree stays near k (symmetrization adds a bit).
        let avg = 2.0 * mesh.m() as f64 / mesh.n() as f64;
        assert!(avg < 2.5 * k as f64, "average degree {avg} exploded");
    }

    #[test]
    fn knn_edges_are_actually_nearest() {
        let mesh = knn3d(150, 4, PointCloud::Uniform, 2);
        // Brute force: for each vertex, its 4 nearest must be neighbours.
        for i in 0..mesh.n() {
            let mut d: Vec<(f64, u32)> = (0..mesh.n())
                .filter(|&j| j != i)
                .map(|j| (mesh.points[i].dist_sq(&mesh.points[j]), j as u32))
                .collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            for &(_, j) in d.iter().take(4) {
                assert!(
                    mesh.graph.neighbors(i as u32).binary_search(&j).is_ok(),
                    "vertex {i} missing nearest neighbour {j}"
                );
            }
        }
    }

    #[test]
    fn clustered_cloud_is_clustered() {
        let mesh = knn3d(1000, 6, PointCloud::Clustered { clusters: 3 }, 3);
        mesh.validate();
        // Clustered points have much smaller mean nearest-neighbour
        // distance than uniform ones.
        let uni = knn3d(1000, 6, PointCloud::Uniform, 3);
        let mean_nn = |m: &Mesh<3>| -> f64 {
            (0..m.n() as u32)
                .map(|v| {
                    m.graph
                        .neighbors(v)
                        .iter()
                        .map(|&u| m.points[v as usize].dist(&m.points[u as usize]))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / m.n() as f64
        };
        assert!(mean_nn(&mesh) < mean_nn(&uni));
    }

    #[test]
    fn connected_for_reasonable_k() {
        let mesh = knn3d(600, 8, PointCloud::Uniform, 4);
        let (cc, _) = geographer_graph::connected_components(&mesh.graph);
        assert_eq!(cc, 1);
    }
}
