//! Random geometric graphs in the unit square (the `rgg_n` DIMACS family).

use geographer_geometry::Point;
use geographer_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Mesh;

/// Random geometric graph: `n` uniform points; two points are connected
/// when closer than `radius`. With `radius = None`, the standard connectivity
/// threshold `sqrt(2 ln n / (π n))` is used (sparse but almost surely
/// connected, matching the DIMACS rgg generator).
pub fn rgg2d(n: usize, radius: Option<f64>, seed: u64) -> Mesh<2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Point<2>> = (0..n)
        .map(|_| Point::new([rng.random::<f64>(), rng.random::<f64>()]))
        .collect();
    let r = radius.unwrap_or_else(|| {
        let nf = n as f64;
        (2.0 * nf.ln() / (std::f64::consts::PI * nf)).sqrt()
    });

    // Uniform grid hashing with cell size r: neighbours live in the 3x3
    // surrounding cells.
    let cells = ((1.0 / r).floor() as usize).max(1);
    let cell_of = |p: &Point<2>| -> (usize, usize) {
        let cx = ((p[0] * cells as f64) as usize).min(cells - 1);
        let cy = ((p[1] * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        grid[cy * cells + cx].push(i as u32);
    }

    let r2 = r * r;
    let mut edges = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if (j as usize) > i && p.dist_sq(&points[j as usize]) <= r2 {
                        edges.push((i as u32, j));
                    }
                }
            }
        }
    }
    let graph = CsrGraph::from_edges(n, &edges);
    Mesh { points, weights: vec![1.0; n], graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_respect_radius() {
        let mesh = rgg2d(500, Some(0.08), 1);
        mesh.validate();
        for v in 0..mesh.n() as u32 {
            for &u in mesh.graph.neighbors(v) {
                let d = mesh.points[v as usize].dist(&mesh.points[u as usize]);
                assert!(d <= 0.08 + 1e-12, "edge longer than radius: {d}");
            }
        }
    }

    #[test]
    fn default_radius_connects_graph() {
        let mesh = rgg2d(2000, None, 2);
        let (cc, _) = geographer_graph::connected_components(&mesh.graph);
        // The threshold radius gives a connected graph w.h.p.; allow a
        // couple of stray isolated pockets.
        assert!(cc <= 3, "rgg unexpectedly fragmented: {cc} components");
    }

    #[test]
    fn grid_hash_matches_bruteforce() {
        let mesh = rgg2d(200, Some(0.15), 3);
        let mut expected = 0usize;
        for i in 0..200 {
            for j in (i + 1)..200 {
                if mesh.points[i].dist(&mesh.points[j]) <= 0.15 {
                    expected += 1;
                }
            }
        }
        assert_eq!(mesh.m(), expected);
    }

    #[test]
    fn deterministic() {
        assert_eq!(rgg2d(100, None, 7).graph, rgg2d(100, None, 7).graph);
    }
}
