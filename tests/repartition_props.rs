//! Properties and the headline quality claim of the repartitioning
//! subsystem (DESIGN.md §5): warm starts are fixed points on unmoved
//! inputs, migration metrics are relabel-free-symmetric, dynamic scenario
//! generators are step-deterministic — and on a cluster-drift workload,
//! warm-start repartitioning migrates a ≥ 2× smaller point fraction than
//! cold re-runs at the same balance bound (the paper's reuse argument).

use geographer::{partition, repartition, Config};
use geographer_bench::{run_tool_repartition, RepartitionMode, Tool};
use geographer_geometry::{Point, WeightedPoints};
use geographer_graph::{migration, relabel_free_migration};
use geographer_mesh::{delaunay_unit_square, DynamicWorkload, Scenario};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 60..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new([x, y])).collect())
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (0u32..4, 0.002f64..0.08, 0.05f64..0.95, 1usize..6).prop_map(
        |(which, speed, shape, clusters)| match which {
            0 => Scenario::Advection { velocity: [speed, speed * shape] },
            1 => Scenario::Rotation { omega: speed * 10.0 },
            2 => Scenario::ClusterDrift { clusters, speed },
            _ => Scenario::HotspotChurn {
                radius: 0.05 + 0.25 * shape,
                boost: 0.5 + 8.0 * shape,
            },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Repartitioning an *unmoved* point set from a converged previous
    /// solve migrates zero points (and zero weight).
    #[test]
    fn unmoved_points_migrate_nothing(pts in arb_points(250), k in 2usize..6) {
        let wp = WeightedPoints::unweighted(pts);
        let cfg = Config { sampling_init: false, max_iterations: 250, ..Config::default() };
        let cold = partition(&wp, k, &cfg);
        // The fixed-point contract is stated for converged solves; 250
        // movement iterations make non-convergence essentially impossible
        // on these inputs, but skip (rather than fail) if it happens.
        if !cold.stats.converged {
            return Ok(());
        }
        let warm = repartition(&wp, &cold.previous(), k, &cfg);
        let m = migration(&cold.assignment, &warm.assignment, &wp.weights);
        prop_assert_eq!(m.migrated_points, 0, "fractions {:?}", m);
        prop_assert_eq!(m.migrated_weight, 0.0);
    }

    /// Relabel-free migration is symmetric in its two assignments, for
    /// both the point and the weight fraction.
    #[test]
    fn relabel_free_migration_is_symmetric(
        labels in prop::collection::vec((0u32..5, 0u32..5, 0.01f64..10.0), 10..200),
    ) {
        let prev: Vec<u32> = labels.iter().map(|(a, _, _)| *a).collect();
        let next: Vec<u32> = labels.iter().map(|(_, b, _)| *b).collect();
        let w: Vec<f64> = labels.iter().map(|(_, _, w)| *w).collect();
        let ab = relabel_free_migration(&prev, &next, &w, 5);
        let ba = relabel_free_migration(&next, &prev, &w, 5);
        prop_assert_eq!(ab.migrated_points, ba.migrated_points);
        prop_assert!(
            (ab.migrated_weight - ba.migrated_weight).abs() < 1e-9,
            "weight asymmetry: {} vs {}", ab.migrated_weight, ba.migrated_weight
        );
        // And a permutation of the labels is never counted as migration.
        let relabeled: Vec<u32> = prev.iter().map(|&b| (b + 2) % 5).collect();
        prop_assert_eq!(relabel_free_migration(&prev, &relabeled, &w, 5).migrated_points, 0);
    }

    /// Dynamic scenario generators are step-deterministic: the same
    /// (base, scenario, seed, step) always produces identical points and
    /// weights, from the same instance or a freshly built one.
    #[test]
    fn dynamic_generators_are_step_deterministic(
        scenario in arb_scenario(),
        seed in any::<u64>(),
        t in 0usize..25,
    ) {
        let base = delaunay_unit_square(150, 5);
        let wl = DynamicWorkload::new(base.clone(), scenario.clone(), seed);
        let fresh = DynamicWorkload::new(base, scenario, seed);
        prop_assert_eq!(wl.points_at(t), fresh.points_at(t));
        prop_assert_eq!(wl.weights_at(t), fresh.weights_at(t));
        prop_assert_eq!(wl.points_at(t), wl.points_at(t), "repeat call must be pure");
    }
}

/// The paper's reuse claim, pinned as a committed test (ISSUE 3 acceptance
/// criterion): over cluster-drift workloads, warm-start repartitioning
/// achieves at least 2× lower migrated-point fraction than cold re-runs at
/// the *same* imbalance bound ε. Aggregated over several seeds because any
/// single cold run may coincidentally land near its predecessor; the
/// aggregate gap is what the reuse argument predicts (measured ≈ 5–7× on
/// this scenario; 2× is the conservative floor).
#[test]
fn warm_repartitioning_halves_migration_on_cluster_drift() {
    let cfg = Config { sampling_init: false, ..Config::default() };
    let (n, k, steps) = (2000usize, 8usize, 5usize);
    let mut warm_sum = 0.0;
    let mut cold_sum = 0.0;
    let mut transitions = 0usize;
    for seed in [7u64, 99, 3, 17] {
        let wl = DynamicWorkload::new(
            delaunay_unit_square(n, seed),
            Scenario::ClusterDrift { clusters: 5, speed: 0.005 },
            seed,
        );
        for (mode, sum) in [
            (RepartitionMode::Warm, &mut warm_sum),
            (RepartitionMode::Cold, &mut cold_sum),
        ] {
            let rows = run_tool_repartition(Tool::Geographer, &wl, k, 1, &cfg, steps, mode);
            for r in &rows {
                // Equal imbalance bound: every step of both modes must
                // meet the configured ε.
                assert!(
                    r.imbalance <= cfg.epsilon + 1e-6,
                    "{} seed {seed} step {}: imbalance {}",
                    mode.name(),
                    r.step,
                    r.imbalance
                );
            }
            *sum += rows[1..].iter().map(|r| r.migrated_point_fraction).sum::<f64>();
        }
        transitions += steps - 1;
    }
    let warm_mean = warm_sum / transitions as f64;
    let cold_mean = cold_sum / transitions as f64;
    assert!(
        cold_mean >= 2.0 * warm_mean,
        "reuse claim violated: cold migrates {:.4}, warm {:.4} (ratio {:.2} < 2)",
        cold_mean,
        warm_mean,
        cold_mean / warm_mean.max(1e-12)
    );
}

/// The committed benchmark artifact must record the cold-vs-warm wall
/// times next to the migration numbers (the speed axis of the reuse
/// claim). Regenerate with
/// `cargo run --release -p geographer_bench --bin bench_repartition`.
#[test]
fn bench_repartition_artifact_records_cold_vs_warm() {
    let json = std::fs::read_to_string("BENCH_repartition.json")
        .expect("BENCH_repartition.json must be committed at the repo root");
    for field in [
        "\"bench\": \"repartition\"",
        "cold_resteps_wall_s",
        "warm_resteps_wall_s",
        "warm_speedup",
        "cold_migration",
        "warm_migration",
        "Geographer-warm",
        "Geographer-cold",
    ] {
        assert!(json.contains(field), "BENCH_repartition.json missing {field}");
    }
}
