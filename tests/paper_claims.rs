//! Integration: the paper's headline comparative claims, at reproduction
//! scale. These are *shape* checks (who wins, roughly by how much), not
//! absolute-number checks — see EXPERIMENTS.md.

use geographer::Config;
use geographer_bench::{evaluate_run, run_tool, Tool};
use geographer_graph::geometric_mean;
use geographer_mesh::families::dimacs2d_suite;

/// Sec. 5.3.1 / abstract: "Geographer produces partitions with a lower
/// communication volume than state-of-the-art geometric partitioners" —
/// on average over the 2D class, vs the *best* competitor, with ~15 %
/// advantage on DIMACS meshes. We require the aggregated ratio of the best
/// baseline to Geographer to be ≥ 1.0 (Geographer at least ties) and the
/// mean over all baselines to be clearly above 1.
#[test]
fn geographer_wins_total_comm_volume_on_2d() {
    let k = 16;
    let cfg = Config::default();
    let mut best_ratio = Vec::new();
    let mut all_ratios = Vec::new();
    for inst in dimacs2d_suite(4000, 10) {
        let geo = {
            let out = run_tool(Tool::Geographer, &inst.mesh, k, 2, &cfg);
            evaluate_run(Tool::Geographer, &inst.mesh, &out, k, 2)
        };
        let baselines: Vec<u64> = [Tool::Hsfc, Tool::MultiJagged, Tool::Rcb, Tool::Rib]
            .iter()
            .map(|&t| {
                let out = run_tool(t, &inst.mesh, k, 2, &cfg);
                evaluate_run(t, &inst.mesh, &out, k, 2).metrics.total_comm_volume
            })
            .collect();
        let geo_vol = geo.metrics.total_comm_volume as f64;
        let best = *baselines.iter().min().unwrap() as f64;
        best_ratio.push(best / geo_vol);
        for b in &baselines {
            all_ratios.push(*b as f64 / geo_vol);
        }
    }
    let gm_best = geometric_mean(&best_ratio);
    let gm_all = geometric_mean(&all_ratios);
    // Geographer must at least tie the best competitor on average...
    assert!(
        gm_best >= 0.97,
        "best-competitor/Geographer totCommVol ratio {gm_best:.3} — Geographer lost the class"
    );
    // ...and clearly beat the field as a whole.
    assert!(
        gm_all >= 1.05,
        "field/Geographer totCommVol ratio {gm_all:.3} — advantage not visible"
    );
}

/// Sec. 5.2.5: "the maximum imbalance ε to 3 %, which was respected by all
/// tools."
#[test]
fn every_tool_respects_epsilon_everywhere() {
    let k = 8;
    let cfg = Config::default();
    for inst in dimacs2d_suite(2500, 11) {
        for tool in Tool::ALL {
            let out = run_tool(tool, &inst.mesh, k, 2, &cfg);
            let mut w = vec![0.0f64; k];
            for (&b, &wi) in out.assignment.iter().zip(&inst.mesh.weights) {
                w[b as usize] += wi;
            }
            let total: f64 = w.iter().sum();
            let imb = w.iter().cloned().fold(0.0, f64::max) / (total / k as f64) - 1.0;
            assert!(
                imb <= 0.03 + 1e-6,
                "{} on {}: imbalance {imb}",
                tool.name(),
                inst.name
            );
        }
    }
}

/// Fig. 3's structural cause: the recursive methods need far more
/// collective rounds than MultiJagged/HSFC/Geographer at the same k, which
/// is what makes them scale poorly.
#[test]
fn recursive_methods_use_more_collectives() {
    let inst = &dimacs2d_suite(3000, 12)[4]; // delaunay
    let k = 32;
    let cfg = Config::default();
    let collectives = |tool: Tool| run_tool(tool, &inst.mesh, k, 4, &cfg).comm.collectives();
    let rcb = collectives(Tool::Rcb);
    let rib = collectives(Tool::Rib);
    let mj = collectives(Tool::MultiJagged);
    let hsfc = collectives(Tool::Hsfc);
    assert!(
        rcb > 2 * mj,
        "RCB ({rcb}) should need well over 2× MJ's collectives ({mj}) at k=32"
    );
    assert!(rib >= rcb, "RIB ({rib}) is RCB plus covariance rounds ({rcb})");
    assert!(hsfc < mj, "HSFC ({hsfc}) is the cheapest structure (MJ {mj})");
}

/// Sec. 4.3: the Hamerly bound skips the inner loop for the (large)
/// majority of points ("about 80 % of the cases").
#[test]
fn hamerly_skip_rate_majority() {
    let inst = &dimacs2d_suite(4000, 13)[4];
    let res = geographer::partition(
        &inst.mesh.weighted_points(),
        16,
        &Config { sampling_init: false, ..Config::default() },
    );
    assert!(
        res.stats.skip_rate() > 0.5,
        "skip rate {:.2} — bounds ineffective",
        res.stats.skip_rate()
    );
}
