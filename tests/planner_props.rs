//! Planner contract properties: the fixed-point regression of ISSUE 6 and
//! the cross-cutting guarantees of `Planner::solve` that no single crate's
//! unit tests can see end to end.
//!
//! The central property is **warm-restart idempotence**: a converged
//! [`Plan`] fed back through its own [`PlanState`] on *unmoved* points must
//! reproduce its assignment bitwise — for flat, hierarchical, and
//! multilevel-refined (stacked) specs alike. The solve phase restarts from
//! its own converged centers and influences, so k-means has nothing left to
//! move; the refinement phase is deterministic on the assembled assignment;
//! therefore the whole plan is a fixed point. A violation means warm state
//! is leaking information that differs from what the solve converged to —
//! exactly the class of bug the unified state enum is meant to prevent.

use geographer::{Config, HierarchySpec};
use geographer_bench::{solve_plan, solve_plan_proc, PlanRecipe, Tool};
use geographer_graph::evaluate_levels;
use geographer_mesh::{delaunay_unit_square, families::bubbles_like, Mesh};
use geographer_planner::RefineMode;
use geographer_refine::MultilevelConfig;

fn cfg() -> Config {
    Config { sampling_init: false, ..Config::default() }
}

/// Solve `recipe` cold, then warm-restart from the returned state on the
/// same mesh, and require the assignment to reproduce bitwise.
fn assert_fixed_point(mesh: &Mesh<2>, recipe: &PlanRecipe, p: usize) {
    let first = solve_plan(mesh, recipe, p, None).plan;
    let state = first
        .state
        .clone()
        .unwrap_or_else(|| panic!("{}: stateful recipe must return a PlanState", recipe.name));
    let second = solve_plan(mesh, recipe, p, Some(&state)).plan;
    assert_eq!(
        second.assignment, first.assignment,
        "{}: warm restart on unmoved points must be a bitwise fixed point",
        recipe.name
    );
    // The refreshed state must describe the same shape and leaf count, so
    // it can be threaded again.
    let refreshed = second.state.expect("warm solve returns refreshed state");
    assert_eq!(refreshed.kind(), state.kind(), "{}: state kind stable", recipe.name);
    assert_eq!(refreshed.k(), state.k(), "{}: state leaf count stable", recipe.name);
}

#[test]
fn warm_restart_is_a_fixed_point_for_a_flat_spec() {
    let mesh = delaunay_unit_square(1_400, 71);
    assert_fixed_point(&mesh, &PlanRecipe::flat("flat", Tool::Geographer, 6, cfg()), 2);
}

#[test]
fn warm_restart_is_a_fixed_point_for_a_hierarchical_spec() {
    let mesh = bubbles_like(1_600, 72);
    let spec = HierarchySpec::uniform(&[3, 2]);
    assert_fixed_point(&mesh, &PlanRecipe::hierarchical("hier", spec, cfg()), 2);
}

#[test]
fn warm_restart_is_a_fixed_point_for_multilevel_refined_specs() {
    // Refinement happens *after* the solve and the state snapshot, so the
    // fixed point must survive it: the warm solve reproduces the raw
    // assignment, and the deterministic refiner maps it to the same
    // refined assignment — for both the flat V-cycle and the stacked
    // hierarchy-aware one.
    let mesh = bubbles_like(1_600, 73);
    let ml = RefineMode::Multilevel(MultilevelConfig::default());
    assert_fixed_point(
        &mesh,
        &PlanRecipe::flat("flat+ml", Tool::Geographer, 4, cfg()).with_refine(ml.clone()),
        2,
    );
    let spec = HierarchySpec::uniform(&[2, 2]);
    assert_fixed_point(
        &mesh,
        &PlanRecipe::hierarchical("stacked", spec, cfg()).with_refine(ml),
        2,
    );
}

#[test]
fn planner_spmd_ranks_agree_with_serial_for_the_stacked_spec() {
    // Rank-redundant refinement plus the ≥ 99.5 % solver agreement policy
    // of DESIGN.md §1, end to end through Planner::solve.
    let mesh = bubbles_like(1_200, 74);
    let spec = HierarchySpec::uniform(&[2, 2]);
    let recipe = PlanRecipe::hierarchical("stacked", spec, cfg())
        .with_refine(RefineMode::Multilevel(MultilevelConfig::default()));
    let serial = solve_plan(&mesh, &recipe, 1, None).plan;
    for p in [2, 4] {
        let spmd = solve_plan(&mesh, &recipe, p, None).plan;
        let same = serial
            .assignment
            .iter()
            .zip(&spmd.assignment)
            .filter(|(a, b)| a == b)
            .count();
        let agree = same as f64 / mesh.n() as f64;
        assert!(agree >= 0.995, "p={p}: only {:.2}% agreement with serial", agree * 100.0);
    }
}

#[test]
fn planner_process_ranks_match_thread_ranks_for_the_stacked_spec() {
    // The full planner stack — hierarchy, multilevel refinement, state
    // assembly — on forked worker processes. Both backends run identical
    // collective algorithms with identical reduction trees, so at equal p
    // the stacked spec must reproduce the thread backend's assignment
    // bitwise; against serial the usual ≥ 99.5 % policy applies.
    let mesh = bubbles_like(1_200, 74);
    let spec = HierarchySpec::uniform(&[2, 2]);
    let recipe = PlanRecipe::hierarchical("stacked", spec, cfg())
        .with_refine(RefineMode::Multilevel(MultilevelConfig::default()));
    let serial = solve_plan(&mesh, &recipe, 1, None).plan;
    for p in [2, 4] {
        let threads = solve_plan(&mesh, &recipe, p, None).plan;
        let procs = solve_plan_proc(&mesh, &recipe, p)
            .unwrap_or_else(|e| panic!("p={p}: proc job failed: {e}"));
        assert_eq!(
            procs.assignment, threads.assignment,
            "p={p}: process ranks must match thread ranks bitwise"
        );
        let same = serial
            .assignment
            .iter()
            .zip(&procs.assignment)
            .filter(|(a, b)| a == b)
            .count();
        let agree = same as f64 / mesh.n() as f64;
        assert!(agree >= 0.995, "p={p}: only {:.2}% agreement with serial", agree * 100.0);
    }
}

#[test]
fn stacked_plans_keep_every_hierarchy_level_balanced() {
    let mesh = bubbles_like(2_000, 75);
    let spec = HierarchySpec::uniform(&[2, 2]);
    let config = cfg();
    let unrefined = solve_plan(&mesh, &PlanRecipe::hierarchical("hier", spec.clone(), config.clone()), 2, None).plan;
    let stacked = solve_plan(
        &mesh,
        &PlanRecipe::hierarchical("stacked", spec.clone(), config.clone())
            .with_refine(RefineMode::Multilevel(MultilevelConfig::default())),
        2,
        None,
    )
    .plan;

    // Refinement must lower (or hold) every level's cut...
    let groups = spec.level_groups();
    let before = evaluate_levels(&mesh.graph, &unrefined.assignment, &groups);
    let after = evaluate_levels(&mesh.graph, &stacked.assignment, &groups);
    for l in 0..groups.len() {
        assert!(
            after[l].edge_cut <= before[l].edge_cut,
            "level {l}: refinement raised the cut {} -> {}",
            before[l].edge_cut,
            after[l].edge_cut
        );
    }
    assert!(stacked.level_refine.is_some(), "stacked plan reports per-level refinement");

    // ...while keeping every level inside the solver's own balance floor:
    // max((1+ε)·target, target + w_max) against the parent's actual weight.
    let w_max = mesh.weights.iter().copied().fold(0.0, f64::max);
    let mut parent_w = vec![mesh.weights.iter().sum::<f64>()];
    for (l, map) in groups.iter().enumerate() {
        let arity = spec.levels[l].arity;
        let eps = spec.levels[l].epsilon.unwrap_or(config.epsilon);
        let mut gw = vec![0.0f64; parent_w.len() * arity];
        for (&b, &w) in stacked.assignment.iter().zip(&mesh.weights) {
            gw[map[b as usize] as usize] += w;
        }
        for (gi, &w) in gw.iter().enumerate() {
            let target = parent_w[gi / arity] / arity as f64;
            let allowed = ((1.0 + eps) * target).max(target + w_max);
            assert!(w <= allowed + 1e-9, "level {l} group {gi}: {w} > {allowed}");
        }
        parent_w = gw;
    }
}
