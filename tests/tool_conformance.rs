//! Cross-tool SPMD conformance suite: every tool × every rank count ×
//! two mesh families must satisfy the basic partitioner contract —
//! complete in-range assignments, no empty block, and rank-count
//! invariance (bitwise for the exact-arithmetic baselines, ≥ 99.5 %
//! agreement for the tools whose cuts depend on inexact cross-rank
//! floating-point sums; see DESIGN.md §1 for the policy).
//!
//! Since the planner unification, every configuration here routes through
//! [`geographer_planner::Planner::solve`] — the same entry point the bench
//! binaries use — via the bench harness's [`PlanRecipe`]/[`solve_plan`].
//! The legacy `run_tool` facade is pinned against the planner's answer
//! bitwise, so the two entry points cannot drift apart.
//!
//! The rank counts deliberately include a non-power-of-two (p = 7) so the
//! butterfly collectives' fold/unfold path is exercised by every tool.

use geographer::Config;
use geographer_bench::{run_tool, solve_plan, solve_plan_proc, PlanRecipe, Tool};
use geographer_mesh::{delaunay_unit_square, families::bubbles_like, Mesh};

const RANK_COUNTS: [usize; 4] = [1, 2, 4, 7];
const K: usize = 5;

/// Tools whose SPMD arithmetic is exact on unit weights (coordinate cuts,
/// integer Hilbert keys): rank-count invariance must be bitwise.
const EXACT_TOOLS: [Tool; 3] = [Tool::Hsfc, Tool::MultiJagged, Tool::Rcb];

fn agreement(a: &[u32], b: &[u32]) -> f64 {
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

fn block_sizes(asg: &[u32], k: usize, label: &str) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &b in asg {
        assert!((b as usize) < k, "{label}: block id {b} out of range (k = {k})");
        counts[b as usize] += 1;
    }
    counts
}

fn conformance(mesh: &Mesh<2>, family: &str) {
    let cfg = Config { sampling_init: false, ..Config::default() };
    for tool in Tool::ALL {
        let exact = EXACT_TOOLS.contains(&tool);
        let recipe = PlanRecipe::flat(tool.name(), tool, K, cfg.clone());
        let reference = solve_plan(mesh, &recipe, 1, None).plan.assignment;
        for p in RANK_COUNTS {
            let label = format!("{} on {family} at p={p}", tool.name());
            let plan = solve_plan(mesh, &recipe, p, None).plan;
            // Assignment length preserved, ids in range, no empty block.
            assert_eq!(plan.assignment.len(), mesh.n(), "{label}: length");
            let counts = block_sizes(&plan.assignment, K, &label);
            assert!(
                counts.iter().all(|&c| c > 0),
                "{label}: empty block, sizes {counts:?}"
            );
            // SPMD vs single-rank agreement.
            if exact {
                assert_eq!(plan.assignment, reference, "{label}: must be bitwise invariant");
            } else {
                let agree = agreement(&plan.assignment, &reference);
                assert!(
                    agree >= 0.995,
                    "{label}: only {:.2}% agreement with p=1",
                    agree * 100.0
                );
            }
            // The legacy driver facade must agree with the planner route
            // bitwise — one partitioning pipeline, two doors.
            let facade = run_tool(tool, mesh, K, p, &cfg);
            assert_eq!(
                facade.assignment, plan.assignment,
                "{label}: run_tool facade diverged from Planner::solve"
            );
        }
    }
}

/// The process-backend half of the contract: at equal `p`, forked-rank
/// solves must agree **bitwise** with thread-rank solves for *every* tool
/// — both backends run the identical collective algorithms with the
/// identical rank-ordered reduction trees, so even the inexact tools'
/// floating-point sums come out bit-for-bit equal. Against the p=1
/// reference the usual policy applies (bitwise for exact tools, ≥ 99.5 %
/// for the rest).
fn proc_conformance(mesh: &Mesh<2>, family: &str) {
    let cfg = Config { sampling_init: false, ..Config::default() };
    for tool in Tool::ALL {
        let exact = EXACT_TOOLS.contains(&tool);
        let recipe = PlanRecipe::flat(tool.name(), tool, K, cfg.clone());
        let reference = solve_plan(mesh, &recipe, 1, None).plan.assignment;
        for p in [2usize, 4] {
            let label = format!("{} on {family} at p={p} (proc)", tool.name());
            let run = solve_plan_proc(mesh, &recipe, p)
                .unwrap_or_else(|e| panic!("{label}: job failed: {e}"));
            assert_eq!(run.assignment.len(), mesh.n(), "{label}: length");
            let counts = block_sizes(&run.assignment, K, &label);
            assert!(counts.iter().all(|&c| c > 0), "{label}: empty block, sizes {counts:?}");
            let threads = solve_plan(mesh, &recipe, p, None).plan.assignment;
            assert_eq!(
                run.assignment, threads,
                "{label}: process ranks must match thread ranks bitwise"
            );
            if exact {
                assert_eq!(run.assignment, reference, "{label}: must be bitwise invariant");
            } else {
                let agree = agreement(&run.assignment, &reference);
                assert!(
                    agree >= 0.995,
                    "{label}: only {:.2}% agreement with p=1",
                    agree * 100.0
                );
            }
            // Real sockets moved real bytes: the counters cannot be empty.
            assert!(run.comm.rounds() > 0, "{label}: no rounds recorded");
            assert!(run.comm.bytes() > 0, "{label}: no bytes recorded");
        }
    }
}

#[test]
fn conformance_on_delaunay() {
    conformance(&delaunay_unit_square(1100, 33), "delaunay");
}

#[test]
fn conformance_on_a_refined_density_mesh() {
    conformance(&bubbles_like(950, 34), "bubbles-like");
}

#[test]
fn proc_backend_conformance_on_delaunay() {
    proc_conformance(&delaunay_unit_square(1100, 33), "delaunay");
}

#[test]
fn proc_backend_conformance_on_a_refined_density_mesh() {
    proc_conformance(&bubbles_like(950, 34), "bubbles-like");
}

#[test]
fn proc_backend_rank_death_fails_cleanly_under_the_full_pipeline() {
    // Fault injection at the application level: one worker dies mid-solve
    // (process death, not a panic — its sockets just close). The job must
    // come back as a clean error well within the CI timeout, never hang.
    use geographer_parcomm::{run_spmd_proc, Comm};
    let mesh = delaunay_unit_square(600, 35);
    let cfg = Config { sampling_init: false, ..Config::default() };
    let recipe = PlanRecipe::flat("doomed", Tool::Geographer, K, cfg);
    let err = run_spmd_proc(4, |comm| {
        if comm.rank() == 3 {
            // Die after the first collective so peers are mid-stream.
            comm.barrier();
            std::process::exit(11);
        }
        let spec = recipe.spec(&mesh);
        geographer_planner::Planner::solve(&spec, None, &comm).assignment
    })
    .expect_err("a dead rank must fail the job");
    let msg = err.to_string();
    assert!(msg.contains("rank"), "error should name a rank: {msg}");
}
