//! Cross-tool SPMD conformance suite: every tool × every rank count ×
//! two mesh families must satisfy the basic partitioner contract —
//! complete in-range assignments, no empty block, and rank-count
//! invariance (bitwise for the exact-arithmetic baselines, ≥ 99.5 %
//! agreement for the tools whose cuts depend on inexact cross-rank
//! floating-point sums; see DESIGN.md §1 for the policy).
//!
//! Since the planner unification, every configuration here routes through
//! [`geographer_planner::Planner::solve`] — the same entry point the bench
//! binaries use — via the bench harness's [`PlanRecipe`]/[`solve_plan`].
//! The legacy `run_tool` facade is pinned against the planner's answer
//! bitwise, so the two entry points cannot drift apart.
//!
//! The rank counts deliberately include a non-power-of-two (p = 7) so the
//! butterfly collectives' fold/unfold path is exercised by every tool.

use geographer::Config;
use geographer_bench::{run_tool, solve_plan, PlanRecipe, Tool};
use geographer_mesh::{delaunay_unit_square, families::bubbles_like, Mesh};

const RANK_COUNTS: [usize; 4] = [1, 2, 4, 7];
const K: usize = 5;

/// Tools whose SPMD arithmetic is exact on unit weights (coordinate cuts,
/// integer Hilbert keys): rank-count invariance must be bitwise.
const EXACT_TOOLS: [Tool; 3] = [Tool::Hsfc, Tool::MultiJagged, Tool::Rcb];

fn agreement(a: &[u32], b: &[u32]) -> f64 {
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

fn block_sizes(asg: &[u32], k: usize, label: &str) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &b in asg {
        assert!((b as usize) < k, "{label}: block id {b} out of range (k = {k})");
        counts[b as usize] += 1;
    }
    counts
}

fn conformance(mesh: &Mesh<2>, family: &str) {
    let cfg = Config { sampling_init: false, ..Config::default() };
    for tool in Tool::ALL {
        let exact = EXACT_TOOLS.contains(&tool);
        let recipe = PlanRecipe::flat(tool.name(), tool, K, cfg.clone());
        let reference = solve_plan(mesh, &recipe, 1, None).plan.assignment;
        for p in RANK_COUNTS {
            let label = format!("{} on {family} at p={p}", tool.name());
            let plan = solve_plan(mesh, &recipe, p, None).plan;
            // Assignment length preserved, ids in range, no empty block.
            assert_eq!(plan.assignment.len(), mesh.n(), "{label}: length");
            let counts = block_sizes(&plan.assignment, K, &label);
            assert!(
                counts.iter().all(|&c| c > 0),
                "{label}: empty block, sizes {counts:?}"
            );
            // SPMD vs single-rank agreement.
            if exact {
                assert_eq!(plan.assignment, reference, "{label}: must be bitwise invariant");
            } else {
                let agree = agreement(&plan.assignment, &reference);
                assert!(
                    agree >= 0.995,
                    "{label}: only {:.2}% agreement with p=1",
                    agree * 100.0
                );
            }
            // The legacy driver facade must agree with the planner route
            // bitwise — one partitioning pipeline, two doors.
            let facade = run_tool(tool, mesh, K, p, &cfg);
            assert_eq!(
                facade.assignment, plan.assignment,
                "{label}: run_tool facade diverged from Planner::solve"
            );
        }
    }
}

#[test]
fn conformance_on_delaunay() {
    conformance(&delaunay_unit_square(1100, 33), "delaunay");
}

#[test]
fn conformance_on_a_refined_density_mesh() {
    conformance(&bubbles_like(950, 34), "bubbles-like");
}
