//! Static/dynamic cross-check: the collective-call trace recorded by
//! [`CheckedComm`] while solving a real plan must be a word in the
//! language of `geo-analyze protocol`'s static summary for the same
//! entry point (trace refinement, DESIGN.md §12).
//!
//! Two granularities:
//!
//! * [`Planner::solve`] — the acceptance-level contract. Its summary
//!   contains honest `?` alternatives (the hierarchical arm recurses per
//!   level), so the positive direction is checked here and the
//!   discriminating controls run against the concrete entry below.
//! * [`geographer::partition_spmd`] — a fully concrete summary (no `?`),
//!   where refinement is falsifiable: perturbed traces must be rejected.

use std::path::Path;

use geographer::Config;
use geographer_analyze::callgraph::Workspace;
use geographer_analyze::protocol::{self, EntrySummary};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::checked::call_name;
use geographer_parcomm::{run_spmd_checked, run_spmd_proc_checked, Comm};
use geographer_planner::{MeshView, PlanSpec, Planner, Tool};

fn entry_summaries() -> Vec<EntrySummary> {
    let ws = Workspace::load(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace sources must be readable");
    protocol::entry_summaries(&ws)
}

fn summary<'a>(entries: &'a [EntrySummary], name: &str) -> &'a EntrySummary {
    entries
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("no static summary for entry point {name}"))
}

fn kind_names(ids: &[u64]) -> Vec<&'static str> {
    ids.iter().map(|&i| call_name(i)).collect()
}

/// Every rank's runtime trace from a flat `Planner::solve` refines the
/// static summary, on the thread backend at p ∈ {2, 4}.
#[test]
fn planner_solve_trace_refines_static_summary_thread_backend() {
    let entries = entry_summaries();
    let solve = summary(&entries, "geographer_planner::Planner::solve");
    let mesh = delaunay_unit_square(600, 11);
    let cfg = Config { sampling_init: false, ..Config::default() };
    for p in [2usize, 4] {
        let spec = PlanSpec::flat(MeshView::from(&mesh), Tool::Geographer, 3, cfg.clone());
        let traces = run_spmd_checked(p, |c| {
            let _ = Planner::solve(&spec, None, &c);
            c.trace_ids()
        });
        for (r, t) in traces.iter().enumerate() {
            assert_eq!(t, &traces[0], "rank {r} trace diverges at p={p}");
            let kinds = kind_names(t);
            assert!(
                protocol::trace_matches(&solve.proto, &kinds),
                "runtime trace at p={p} is not in the static language:\n  \
                 trace:   {kinds:?}\n  summary: {}",
                protocol::key(&solve.proto)
            );
        }
        let kinds = kind_names(&traces[0]);
        assert!(kinds.contains(&"alltoallv"), "pipeline migration missing: {kinds:?}");
    }
}

/// The same refinement holds on the multi-process backend, so the
/// contract is backend-independent (the trace is a property of the
/// algorithm, not of the communicator).
#[test]
fn planner_solve_trace_refines_static_summary_proc_backend() {
    let entries = entry_summaries();
    let solve = summary(&entries, "geographer_planner::Planner::solve");
    let mesh = delaunay_unit_square(400, 23);
    let cfg = Config { sampling_init: false, ..Config::default() };
    for p in [2usize, 4] {
        let spec = PlanSpec::flat(MeshView::from(&mesh), Tool::Geographer, 3, cfg.clone());
        let traces = run_spmd_proc_checked(p, |c| {
            let _ = Planner::solve(&spec, None, &c);
            c.trace_ids()
        })
        .expect("proc job must complete");
        for (r, t) in traces.iter().enumerate() {
            assert_eq!(t, &traces[0], "rank {r} trace diverges at p={p}");
            let kinds = kind_names(t);
            assert!(
                protocol::trace_matches(&solve.proto, &kinds),
                "proc trace at p={p} is not in the static language: {kinds:?}"
            );
        }
    }
}

/// `geographer::partition_spmd` has a fully concrete summary, so the
/// refinement is falsifiable: the real trace matches, and appending,
/// truncating, or substituting a call kind must all be rejected.
#[test]
fn partition_spmd_refinement_is_falsifiable() {
    let entries = entry_summaries();
    let part = summary(&entries, "geographer::partition_spmd");
    let key = protocol::key(&part.proto);
    assert!(
        !key.contains('?'),
        "partition_spmd summary must stay concrete for the controls to bite: {key}"
    );

    let mesh = delaunay_unit_square(400, 7);
    let cfg = Config { sampling_init: false, ..Config::default() };
    let p = 2usize;
    let n = mesh.points.len();
    let traces = run_spmd_checked(p, |c| {
        let (lo, hi) = (c.rank() * n / p, (c.rank() + 1) * n / p);
        let _ = geographer::partition_spmd(
            &c,
            &mesh.points[lo..hi],
            &mesh.weights[lo..hi],
            3,
            &cfg,
        );
        c.trace_ids()
    });
    let kinds = kind_names(&traces[0]);
    assert!(
        protocol::trace_matches(&part.proto, &kinds),
        "real partition_spmd trace rejected:\n  trace:   {kinds:?}\n  summary: {key}"
    );

    let mut extra = kinds.clone();
    extra.push("barrier");
    assert!(!protocol::trace_matches(&part.proto, &extra), "extra trailing call accepted");

    let truncated = &kinds[..kinds.len() - 1];
    assert!(!protocol::trace_matches(&part.proto, truncated), "truncated trace accepted");

    let mut swapped = kinds.clone();
    swapped[0] = "broadcast";
    assert!(!protocol::trace_matches(&part.proto, &swapped), "substituted call accepted");
}
