//! Property-based tests over the whole stack: random point sets, weights,
//! and parameters must never break the partitioners' contracts.

use geographer::{balanced_kmeans, Config};
use geographer_baselines::{partition_shared, Baseline};
use geographer_geometry::{Point, WeightedPoints};
use geographer_parcomm::SelfComm;
use geographer_sfc::{hilbert_coords, hilbert_index};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 50..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new([x, y])).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hilbert index is a bijection on random cells.
    #[test]
    fn hilbert_roundtrip_2d(x in 0u32..(1 << 12), y in 0u32..(1 << 12)) {
        let idx = hilbert_index([x, y], 12);
        prop_assert_eq!(hilbert_coords::<2>(idx, 12), [x, y]);
    }

    /// Hilbert index is a bijection in 3D too.
    #[test]
    fn hilbert_roundtrip_3d(x in 0u32..(1 << 8), y in 0u32..(1 << 8), z in 0u32..(1 << 8)) {
        let idx = hilbert_index([x, y, z], 8);
        prop_assert_eq!(hilbert_coords::<3>(idx, 8), [x, y, z]);
    }

    /// Every baseline produces a complete, in-range, ε-balanced partition
    /// on arbitrary point sets with unit weights.
    #[test]
    fn baselines_contract(pts in arb_points(400), k in 2usize..9) {
        let n = pts.len();
        let wp = WeightedPoints::unweighted(pts);
        for algo in Baseline::ALL {
            let asg = partition_shared(algo, &wp, k);
            prop_assert_eq!(asg.len(), n);
            let mut counts = vec![0usize; k];
            for &b in &asg {
                prop_assert!((b as usize) < k);
                counts[b as usize] += 1;
            }
            // Quantile cuts put each block within one point of its target.
            let max = *counts.iter().max().unwrap() as f64;
            let avg = n as f64 / k as f64;
            prop_assert!(max <= avg + (k as f64), "{}: {:?}", algo.name(), counts);
        }
    }

    /// Balanced k-means always meets ε on random inputs (given enough
    /// iterations) and never leaves an influence non-positive.
    #[test]
    fn kmeans_contract(pts in arb_points(300), k in 2usize..7) {
        let n = pts.len();
        let w = vec![1.0; n];
        let centers: Vec<Point<2>> =
            (0..k).map(|i| pts[(i * n / k + n / (2 * k)).min(n - 1)]).collect();
        let cfg = Config { max_iterations: 60, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, centers, &cfg);
        prop_assert_eq!(out.assignment.len(), n);
        for &b in &out.assignment {
            prop_assert!((b as usize) < k);
        }
        for &i in &out.influence {
            prop_assert!(i.is_finite() && i > 0.0);
        }
        let mut sizes = vec![0.0; k];
        for &b in &out.assignment {
            sizes[b as usize] += 1.0;
        }
        // The solver's contract: max ≤ max((1+ε)·avg, avg + w_max) — the
        // weighted form of the paper's (1+ε)·⌈n/k⌉ (w_max = 1 here).
        let avg = n as f64 / k as f64;
        let allowed = ((1.0 + cfg.epsilon) * avg).max(avg + 1.0);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        prop_assert!(max <= allowed + 1e-9, "max {} > allowed {} sizes {:?}", max, allowed, sizes);
        prop_assert!(out.stats.balance_achieved, "solver must report balance, sizes {:?}", sizes);
    }

    /// Weighted quantiles really split the weight (SelfComm path).
    #[test]
    fn quantile_splits_weight(
        vals in prop::collection::vec(-100.0f64..100.0, 20..200),
        alpha in 0.05f64..0.95,
    ) {
        let weights = vec![1.0; vals.len()];
        let q = geographer_dsort::weighted_quantiles_f64(&SelfComm, &vals, &weights, &[alpha]);
        let below = vals.iter().filter(|v| **v <= q[0]).count() as f64;
        let frac = below / vals.len() as f64;
        // Within one element of the target fraction.
        prop_assert!((frac - alpha).abs() <= 1.5 / vals.len() as f64 + 1e-9,
            "alpha={} frac={}", alpha, frac);
    }
}
