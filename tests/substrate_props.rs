//! Property tests over the substrate crates: CSR construction, induced
//! subgraphs, SPMD collectives, and the sort/rebalance pipeline under
//! arbitrary shard shapes.

use geographer_graph::{connected_components, CsrGraph};
use geographer_parcomm::{run_spmd, Comm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR from arbitrary edge lists is symmetric, self-loop-free, and
    /// duplicate-free; edge count matches the distinct-edge count.
    #[test]
    fn csr_contract(n in 1usize..60, raw in prop::collection::vec((0u32..60, 0u32..60), 0..200)) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert!(g.is_symmetric());
        let mut distinct: std::collections::HashSet<(u32, u32)> = Default::default();
        for &(a, b) in &edges {
            if a != b {
                distinct.insert((a.min(b), a.max(b)));
            }
        }
        prop_assert_eq!(g.m(), distinct.len());
        for v in 0..n as u32 {
            prop_assert!(!g.neighbors(v).contains(&v), "self loop survived");
            let mut sorted = g.neighbors(v).to_vec();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), g.degree(v), "duplicate neighbour");
        }
    }

    /// Induced subgraphs never gain edges or components relative to what
    /// the vertex subset allows.
    #[test]
    fn induced_subgraph_contract(
        n in 2usize..40,
        raw in prop::collection::vec((0u32..40, 0u32..40), 0..120),
        subset_bits in prop::collection::vec(any::<bool>(), 40),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let verts: Vec<u32> =
            (0..n as u32).filter(|&v| subset_bits[v as usize]).collect();
        if verts.is_empty() {
            return Ok(());
        }
        let sub = g.induced_subgraph(&verts);
        prop_assert_eq!(sub.n(), verts.len());
        prop_assert!(sub.m() <= g.m());
        prop_assert!(sub.is_symmetric());
        // Every subgraph edge must exist in the parent.
        for (i, &v) in verts.iter().enumerate() {
            for &j in sub.neighbors(i as u32) {
                let u = verts[j as usize];
                prop_assert!(g.neighbors(v).binary_search(&u).is_ok());
            }
        }
        let (cc_sub, _) = connected_components(&sub);
        prop_assert!(cc_sub >= 1);
    }

    /// Distributed sort + rebalance over arbitrary shard sizes equals the
    /// sequential sort, with exact n/p ownership.
    #[test]
    fn sort_rebalance_arbitrary_shards(
        shards in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..80), 1..5),
    ) {
        let p = shards.len();
        let shards_ref = &shards;
        let results = run_spmd(p, move |c| {
            let mine: Vec<u64> =
                shards_ref[c.rank()].iter().map(|&x| x as u64).collect();
            let sorted = geographer_dsort::sample_sort_by_key(&c, mine, |&x| x);
            geographer_dsort::rebalance(&c, sorted)
        });
        let mut expected: Vec<u64> =
            shards.iter().flatten().map(|&x| x as u64).collect();
        expected.sort_unstable();
        let got: Vec<u64> = results.iter().flatten().copied().collect();
        prop_assert_eq!(&got, &expected);
        // Ownership split: rank r owns the global positions g with
        // ⌊g·p/total⌋ = r (sizes differ by at most one).
        let total = expected.len() as u64;
        for (r, shard) in results.iter().enumerate() {
            let want = (0..total)
                .filter(|&g| ((g as u128 * p as u128) / total.max(1) as u128) as usize == r)
                .count();
            prop_assert_eq!(shard.len(), want, "rank {} owns wrong count", r);
        }
    }

    /// Allreduce results are bitwise identical on every rank (the
    /// butterfly applies one fixed reduction tree) and agree with the
    /// sequential reduction up to floating-point associativity, for any
    /// contribution pattern.
    #[test]
    fn allreduce_agreement(contribs in prop::collection::vec(-1e6f64..1e6, 2..6)) {
        let p = contribs.len();
        let c_ref = &contribs;
        let results = run_spmd(p, move |c| {
            let mut buf = vec![c_ref[c.rank()]];
            c.allreduce_sum_f64(&mut buf);
            buf[0]
        });
        for r in &results {
            prop_assert_eq!(r.to_bits(), results[0].to_bits(), "ranks disagree");
        }
        // The reduction tree is balanced, not rank-ordered, so require
        // agreement up to the usual summation-order slack.
        let expected = contribs.iter().fold(0.0, |a, b| a + b);
        let tol = 1e-9 * expected.abs().max(1.0);
        prop_assert!(
            (results[0] - expected).abs() <= tol,
            "butterfly sum {} too far from sequential {}", results[0], expected
        );
    }

    /// ISSUE-2 satellite: `sample_sort_by_key` over `ThreadComm` with
    /// p ∈ {2, 3, 8} produces the same multiset and globally sorted order
    /// as a sequential sort of the concatenated input.
    #[test]
    fn sample_sort_matches_sequential_sort(
        p_idx in 0usize..3,
        keys in prop::collection::vec(any::<u64>(), 0..600),
    ) {
        let p = [2usize, 3, 8][p_idx];
        let keys_ref = &keys;
        let results = run_spmd(p, move |c| {
            // Deal the concatenated input round-robin into p shards, so
            // shard sizes differ and every rank sees an arbitrary subset.
            let mine: Vec<u64> = keys_ref
                .iter()
                .enumerate()
                .filter(|(i, _)| i % p == c.rank())
                .map(|(_, &k)| k)
                .collect();
            geographer_dsort::sample_sort_by_key(&c, mine, |&x| x)
        });
        // Concatenating the per-rank outputs in rank order must equal the
        // sequential sort: same multiset, globally non-decreasing.
        let got: Vec<u64> = results.iter().flatten().copied().collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        prop_assert_eq!(&got, &expected, "p={}", p);
    }

    /// The effective-distance kd-tree agrees with brute force for any
    /// center layout and influence assignment.
    #[test]
    fn kdtree_matches_bruteforce(
        centers in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..50),
        infl_raw in prop::collection::vec(0.1f64..5.0, 50),
        queries in prop::collection::vec((-0.5f64..1.5, -0.5f64..1.5), 20),
    ) {
        use geographer_geometry::Point;
        let pts: Vec<Point<2>> =
            centers.iter().map(|&(x, y)| Point::new([x, y])).collect();
        let infl = &infl_raw[..pts.len()];
        let tree = geographer::kdtree::CenterTree::build(&pts, infl);
        for &(qx, qy) in &queries {
            let q = Point::new([qx, qy]);
            let got = tree.nearest(&q);
            let want = pts
                .iter()
                .zip(infl)
                .map(|(c, i)| q.dist(c) / i)
                .fold(f64::INFINITY, f64::min);
            prop_assert!((got.eff_dist - want).abs() < 1e-12);
        }
    }
}
