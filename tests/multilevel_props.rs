//! Properties of the multilevel coarsening subsystem (ISSUE 5): matching
//! validity, exact weight conservation under contraction, the
//! coarse-cut = projected-fine-cut invariant the V-cycle rests on, the
//! single-core edge-cut cross-check, and the committed acceptance
//! inequality (multilevel strictly below single-level at equal ε on two
//! mesh families).

use geographer::Config;
use geographer_bench::{run_tool, Tool};
use geographer_graph::coarsen::{contract, heavy_edge_matching, WeightedCsrGraph};
use geographer_graph::{evaluate_partition, CsrGraph};
use geographer_mesh::{delaunay_unit_square, families::bubbles_like};
use geographer_refine::{
    refine_multilevel, refine_partition, MultilevelConfig, RefineConfig,
};
use proptest::prelude::*;

/// Random sparse graph + integer-valued vertex weights (exactly
/// representable, so weight conservation can be asserted with `==`),
/// built from plain sampled values (the vendored proptest shim has no
/// `prop_flat_map`).
fn build_weighted_graph(
    n: usize,
    raw: &[(u32, u32)],
    wseed: u64,
) -> (WeightedCsrGraph, CsrGraph) {
    let edges: Vec<(u32, u32)> =
        raw.iter().map(|&(a, b)| (a % n as u32, b % n as u32)).collect();
    let g = CsrGraph::from_edges(n, &edges);
    let mut rng = geographer_geometry::SplitMix64::new(wseed ^ 0x9E37_79B9);
    let vwgt: Vec<f64> = (0..n).map(|_| (1 + rng.next_u64() % 5) as f64).collect();
    (WeightedCsrGraph::from_csr(&g, vwgt), g)
}

/// Strategy for the raw ingredients of [`build_weighted_graph`].
fn arb_graph_parts() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, u64)> {
    (
        2usize..80,
        prop::collection::vec((0u32..1000, 0u32..1000), 0..240),
        0u64..1_000_000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heavy-edge matching is a valid matching: an involution in which
    /// every matched pair is an existing edge, and (when labels are given)
    /// never crosses a label boundary.
    #[test]
    fn matching_is_valid(gen in arb_graph_parts(), lseed in 0u32..5) {
        let (wg, _g) = build_weighted_graph(gen.0, &gen.1, gen.2);
        let labels: Vec<u32> = (0..wg.n() as u32).map(|v| (v.wrapping_mul(2654435761) ^ lseed) % (lseed + 2)).collect();
        for lab in [None, Some(&labels[..])] {
            let mate = heavy_edge_matching(&wg, lab);
            prop_assert_eq!(mate.len(), wg.n());
            for v in 0..wg.n() as u32 {
                let m = mate[v as usize];
                // Matched at most once: involution.
                prop_assert_eq!(mate[m as usize], v, "not an involution at {}", v);
                if m != v {
                    // Only across existing edges.
                    prop_assert!(
                        wg.neighbors(v).binary_search(&m).is_ok(),
                        "{}-{} matched without an edge", v, m
                    );
                    if let Some(l) = lab {
                        prop_assert_eq!(l[v as usize], l[m as usize]);
                    }
                }
            }
        }
    }

    /// Contraction conserves total vertex weight exactly (integer-valued
    /// weights: float addition is exact, so `==`, not a tolerance).
    #[test]
    fn contraction_preserves_total_weight(gen in arb_graph_parts()) {
        let (wg, _g) = build_weighted_graph(gen.0, &gen.1, gen.2);
        let mate = heavy_edge_matching(&wg, None);
        let c = contract(&wg, &mate);
        prop_assert_eq!(c.coarse.total_vertex_weight(), wg.total_vertex_weight());
        // And per fine vertex: its coarse vertex covers exactly its pair.
        prop_assert_eq!(c.coarse_of_fine.len(), wg.n());
        let mut covered = vec![0.0f64; c.coarse.n()];
        for (v, &cv) in c.coarse_of_fine.iter().enumerate() {
            covered[cv as usize] += wg.vwgt[v];
        }
        prop_assert_eq!(covered, c.coarse.vwgt.clone());
    }

    /// The V-cycle invariant: for ANY coarse assignment, the weighted cut
    /// of the coarse graph equals the weighted cut of its projection onto
    /// the fine graph (here the fine graph has unit edge weights, so the
    /// projected weighted cut is the plain fine edge cut).
    #[test]
    fn coarse_cut_equals_projected_fine_cut(gen in arb_graph_parts(), kseed in 1u32..7) {
        let (wg, g) = build_weighted_graph(gen.0, &gen.1, gen.2);
        let mate = heavy_edge_matching(&wg, None);
        let c = contract(&wg, &mate);
        // Pseudo-random coarse assignment with kseed+1 blocks.
        let casg: Vec<u32> = (0..c.coarse.n() as u32)
            .map(|v| v.wrapping_mul(2246822519).wrapping_add(kseed) % (kseed + 1))
            .collect();
        let fine_asg = c.project(&casg);
        prop_assert_eq!(c.coarse.edge_cut(&casg), wg.edge_cut(&fine_asg));
        prop_assert_eq!(wg.edge_cut(&fine_asg), geographer_graph::edge_cut(&g, &fine_asg));
    }

    /// The three historical edge-cut implementations (refine's, the
    /// metric core's, and the weighted variant on unit weights) now sit on
    /// one core and must agree everywhere.
    #[test]
    fn edge_cut_implementations_agree(gen in arb_graph_parts(), k in 1u32..6) {
        let (wg, g) = build_weighted_graph(gen.0, &gen.1, gen.2);
        let asg: Vec<u32> = (0..g.n() as u32).map(|v| v.wrapping_mul(40503) % k).collect();
        let from_refine = geographer_refine::edge_cut(&g, &asg);
        let from_graph = geographer_graph::edge_cut(&g, &asg);
        let from_weighted = wg.edge_cut(&asg); // unit edge weights
        let from_metrics = evaluate_partition(&g, &asg, &wg.vwgt, k as usize).edge_cut;
        prop_assert_eq!(from_refine, from_graph);
        prop_assert_eq!(from_graph, from_weighted);
        prop_assert_eq!(from_weighted, from_metrics);
    }
}

/// The committed ISSUE 5 acceptance: on two benchmark mesh families, the
/// multilevel V-cycle reaches a strictly lower edge cut than the
/// single-level pass from the same HSFC partition at equal ε, with
/// balance within the feasibility floor.
#[test]
fn multilevel_beats_single_level_on_two_mesh_families() {
    let n = 6_000;
    let k = 16usize;
    let cfg = Config { sampling_init: false, ..Config::default() };
    let rcfg = RefineConfig::default();
    for (name, mesh) in [
        ("bubbles-like", bubbles_like(n, 55)),
        ("delaunay", delaunay_unit_square(n, 56)),
    ] {
        let out = run_tool(Tool::Hsfc, &mesh, k, 2, &cfg);
        let mut single = out.assignment.clone();
        let sr = refine_partition(&mesh.graph, &mut single, &mesh.weights, k, &rcfg);
        let mut multi = out.assignment.clone();
        let mr = refine_multilevel(
            &mesh.graph,
            &mut multi,
            &mesh.weights,
            k,
            &MultilevelConfig { refine: rcfg.clone(), ..MultilevelConfig::default() },
        );
        assert_eq!(sr.cut_before, mr.cut_before, "{name}: same starting partition");
        assert!(
            mr.cut_after < sr.cut_after,
            "{name}: multilevel {} must be strictly below single-level {}",
            mr.cut_after,
            sr.cut_after
        );
        // Balance within the floor, measured with the (fixed) metric.
        let total: f64 = mesh.weights.iter().sum();
        let floor = ((1.0 + rcfg.epsilon) * total / k as f64).max(total / k as f64 + 1.0);
        let mut bw = vec![0.0f64; k];
        for (&b, &w) in multi.iter().zip(&mesh.weights) {
            bw[b as usize] += w;
        }
        for (b, &w) in bw.iter().enumerate() {
            assert!(w <= floor + 1e-9, "{name}: block {b} weight {w} > floor {floor}");
        }
    }
}

/// Thread-count independence: the matching, contraction, and full V-cycle
/// are pure functions of the input (CI re-runs the suite with
/// `RAYON_NUM_THREADS=1`; this test gives the double run real coverage
/// over the parallel contraction path).
#[test]
fn multilevel_is_deterministic() {
    let mesh = delaunay_unit_square(4_000, 77);
    let k = 8usize;
    let init: Vec<u32> = (0..4_000u32).map(|v| v % k as u32).collect();
    let run = || {
        let mut asg = init.clone();
        let r = refine_multilevel(
            &mesh.graph,
            &mut asg,
            &mesh.weights,
            k,
            &MultilevelConfig { coarsest_vertices: 500, ..MultilevelConfig::default() },
        );
        (asg, r)
    };
    let (a1, r1) = run();
    let (a2, r2) = run();
    assert_eq!(a1, a2, "V-cycle must be bitwise deterministic");
    assert_eq!(r1, r2);
}
