//! Integration: cross-checks between independently implemented metrics —
//! the graph-metric communication volume must equal the bytes the SpMV
//! substrate actually moves, per Sec. 2's definitions.

use geographer::Config;
use geographer_bench::{run_tool, Tool};
use geographer_graph::evaluate_partition;
use geographer_mesh::{delaunay_unit_square, grid3d};
use geographer_parcomm::run_spmd;
use geographer_spmv::spmv_comm_time;

#[test]
fn spmv_bytes_equal_comm_volume_2d() {
    let mesh = delaunay_unit_square(1500, 30);
    let k = 6;
    for tool in Tool::ALL {
        let out = run_tool(tool, &mesh, k, 2, &Config::default());
        let metrics = evaluate_partition(&mesh.graph, &out.assignment, &mesh.weights, k);
        let reports = run_spmd(k, |c| spmv_comm_time(&c, &mesh.graph, &out.assignment, k, 2));
        let bytes: u64 = reports.iter().map(|r| r.bytes_sent_per_iter).sum();
        assert_eq!(
            bytes,
            8 * metrics.total_comm_volume,
            "{}: SpMV bytes disagree with the comm-volume metric",
            tool.name()
        );
    }
}

#[test]
fn spmv_bytes_equal_comm_volume_3d() {
    let mesh = grid3d(10, 10, 10, 0.2, 31);
    let k = 4;
    let out = run_tool(Tool::MultiJagged, &mesh, k, 2, &Config::default());
    let metrics = evaluate_partition(&mesh.graph, &out.assignment, &mesh.weights, k);
    let reports = run_spmd(k, |c| spmv_comm_time(&c, &mesh.graph, &out.assignment, k, 2));
    let bytes: u64 = reports.iter().map(|r| r.bytes_sent_per_iter).sum();
    assert_eq!(bytes, 8 * metrics.total_comm_volume);
}

#[test]
fn diameters_bounded_by_graph_diameter() {
    // A block's diameter lower bound can never exceed a (loose) upper bound
    // on the whole graph's diameter: n.
    let mesh = delaunay_unit_square(800, 32);
    let out = run_tool(Tool::Geographer, &mesh, 5, 1, &Config::default());
    let metrics = evaluate_partition(&mesh.graph, &out.assignment, &mesh.weights, 5);
    for d in metrics.diameters.iter().flatten() {
        assert!((*d as usize) < mesh.n());
    }
}
