//! Integration: rank-count invariance. Every partitioner in the workspace
//! is a deterministic function of the *global* point set, so running it on
//! 1, 2 or 5 SPMD ranks must produce the same partition — with one honest
//! caveat shared with every MPI code: cross-rank floating-point reductions
//! are not associative, so algorithms whose cuts depend on *inexact* sums
//! (RIB's covariance; anything under non-integer weights) may flip
//! individual points that lie exactly on a cut boundary. We therefore
//! require bitwise equality where the arithmetic is exact (unit weights,
//! coordinate cuts, integer Hilbert keys) and ≥ 99.5 % agreement plus an
//! intact balance guarantee elsewhere. (Geographer needs
//! `sampling_init = false` here: the sampling permutation is intentionally
//! rank-local, as in the paper.)

use geographer::Config;
use geographer_bench::{run_tool, Tool};
use geographer_mesh::{climate25d, delaunay_unit_square, Mesh};

fn agreement(a: &[u32], b: &[u32]) -> f64 {
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

fn check_balance<const D: usize>(mesh: &Mesh<D>, asg: &[u32], k: usize, label: &str) {
    let mut w = vec![0.0f64; k];
    for (&b, &wi) in asg.iter().zip(&mesh.weights) {
        w[b as usize] += wi;
    }
    let total: f64 = w.iter().sum();
    let imb = w.iter().cloned().fold(0.0, f64::max) / (total / k as f64) - 1.0;
    assert!(imb <= 0.03 + 1e-6, "{label}: imbalance {imb}");
}

#[test]
fn exact_invariance_with_unit_weights() {
    // Unit weights make every weight sum exact in f64, and RCB/MJ cut on
    // raw coordinates, HSFC on integer keys: bitwise identical partitions.
    let mesh = delaunay_unit_square(1500, 20);
    let cfg = Config { sampling_init: false, ..Config::default() };
    for tool in [Tool::Rcb, Tool::MultiJagged, Tool::Hsfc] {
        let reference = run_tool(tool, &mesh, 6, 1, &cfg).assignment;
        for p in [2usize, 5] {
            let got = run_tool(tool, &mesh, 6, p, &cfg).assignment;
            assert_eq!(got, reference, "{} differs at p={p}", tool.name());
        }
    }
}

#[test]
fn inexact_sum_tools_invariant_up_to_fp_reduction_order() {
    // RIB (covariance sums) and Geographer (centroid sums) reduce inexact
    // floating-point quantities across ranks.
    let mesh = delaunay_unit_square(1500, 20);
    let cfg = Config { sampling_init: false, ..Config::default() };
    for tool in [Tool::Rib, Tool::Geographer] {
        let reference = run_tool(tool, &mesh, 6, 1, &cfg).assignment;
        for p in [2usize, 5] {
            let got = run_tool(tool, &mesh, 6, p, &cfg).assignment;
            let agree = agreement(&got, &reference);
            assert!(
                agree >= 0.995,
                "{} at p={p}: only {:.2}% agreement with p=1",
                tool.name(),
                agree * 100.0
            );
            check_balance(&mesh, &got, 6, tool.name());
        }
    }
}

#[test]
fn weighted_invariance_up_to_fp_reduction_order() {
    let mesh = climate25d(1200, 30, 21);
    let cfg = Config { sampling_init: false, ..Config::default() };
    for tool in Tool::ALL {
        let reference = run_tool(tool, &mesh, 5, 1, &cfg).assignment;
        let got = run_tool(tool, &mesh, 5, 3, &cfg).assignment;
        let agree = agreement(&got, &reference);
        assert!(
            agree >= 0.995,
            "{}: only {:.2}% agreement on weighted input",
            tool.name(),
            agree * 100.0
        );
        check_balance(&mesh, &got, 5, tool.name());
    }
}

#[test]
fn sampling_init_still_balances_across_rank_counts() {
    // With sampling on, the partition may differ between rank counts, but
    // the balance guarantee must hold for every p.
    let mesh = delaunay_unit_square(2000, 22);
    let cfg = Config::default();
    for p in [1usize, 2, 4] {
        let asg = run_tool(Tool::Geographer, &mesh, 8, p, &cfg).assignment;
        check_balance(&mesh, &asg, 8, "Geographer(sampling)");
    }
}
