//! Integration: the full Geographer pipeline on every mesh family, checked
//! against the paper's hard requirements (balance ≤ ε) and structural
//! metric invariants.

use geographer::{partition, Config};
use geographer_graph::evaluate_partition;
use geographer_mesh::families::{climate_suite, dimacs2d_suite, three_d_suite};
use geographer_mesh::Mesh;

fn check_mesh<const D: usize>(name: &str, mesh: &Mesh<D>, k: usize) {
    let cfg = Config::default();
    let res = partition(&mesh.weighted_points(), k, &cfg);
    assert_eq!(res.assignment.len(), mesh.n(), "{name}: assignment length");
    let m = evaluate_partition(&mesh.graph, &res.assignment, &mesh.weights, k);

    // The paper's hard constraint: ε respected ("which was respected by all
    // tools", Sec. 5.2.5).
    assert!(
        m.imbalance <= cfg.epsilon + 1e-9,
        "{name}: imbalance {} > ε",
        m.imbalance
    );

    // Structural invariants of the metrics:
    // each cut edge contributes at most 2 vertex-block boundary pairs.
    assert!(
        m.total_comm_volume <= 2 * m.edge_cut,
        "{name}: totCommVol {} > 2·cut {}",
        m.total_comm_volume,
        m.edge_cut
    );
    assert!(m.max_comm_volume <= m.total_comm_volume);
    // A connected mesh partitioned into k ≥ 2 blocks must have a nonzero
    // cut.
    assert!(m.edge_cut > 0, "{name}: zero cut for k ≥ 2");
    // No block may be empty on these healthy instances.
    let mut counts = vec![0usize; k];
    for &b in &res.assignment {
        counts[b as usize] += 1;
    }
    assert!(counts.iter().all(|&c| c > 0), "{name}: empty block {counts:?}");
}

#[test]
fn dimacs2d_families_partition_within_epsilon() {
    for inst in dimacs2d_suite(3000, 1) {
        check_mesh(inst.name, &inst.mesh, 8);
    }
}

#[test]
fn climate_families_partition_within_epsilon() {
    for inst in climate_suite(2500, 2) {
        check_mesh(inst.name, &inst.mesh, 6);
    }
}

#[test]
fn three_d_families_partition_within_epsilon() {
    for inst in three_d_suite(2000, 3) {
        check_mesh(inst.name, &inst.mesh, 6);
    }
}

#[test]
fn awkward_k_values() {
    let inst = &dimacs2d_suite(2000, 4)[0];
    for k in [2usize, 3, 7, 13] {
        check_mesh(inst.name, &inst.mesh, k);
    }
}
