//! Properties and the acceptance criterion of the hierarchical
//! partitioning subsystem (DESIGN.md §6):
//!
//! * `owner_of_block` is contiguous and surjective onto ranks for every
//!   `p ≤ k ≤ 64`;
//! * the hierarchical flatten is a bijection between leaf paths and flat
//!   block ids (path-lexicographic order = increasing flat id);
//! * a `[4, 2]` solve meets the balance bound at *every* level (leaf
//!   blocks against their node's weight, node aggregates against the
//!   total), and on a clustered mesh its inter-node communication volume
//!   is strictly below flat k = 8's volume restricted to the same node
//!   mapping — the committed ISSUE 4 acceptance test, mirrored by
//!   `BENCH_hierarchy.json`.

use geographer::{partition, partition_hierarchical, Config, HierarchySpec};
use geographer_geometry::WeightedPoints;
use geographer_graph::evaluate_levels;
use geographer_mesh::families::bubbles_like;
use geographer_spmv::owner_of_block;
use proptest::prelude::*;

#[test]
fn owner_of_block_contiguous_and_surjective_for_all_p_up_to_k_64() {
    for k in 1..=64usize {
        for p in 1..=k {
            let owners: Vec<usize> =
                (0..k as u32).map(|b| owner_of_block(b, k, p)).collect();
            // In range.
            assert!(owners.iter().all(|&r| r < p), "k={k} p={p}: owner out of range");
            // Contiguous: non-decreasing block → rank mapping (each rank
            // owns one contiguous range of block ids).
            assert!(
                owners.windows(2).all(|w| w[0] <= w[1]),
                "k={k} p={p}: mapping not contiguous: {owners:?}"
            );
            // Surjective: every rank owns at least one block.
            let mut seen = vec![false; p];
            for &r in &owners {
                seen[r] = true;
            }
            assert!(seen.iter().all(|&s| s), "k={k} p={p}: some rank owns no block");
            // Anchored: first block on rank 0, last on rank p−1.
            assert_eq!(owners[0], 0);
            assert_eq!(*owners.last().unwrap(), p - 1);
        }
    }
}

proptest! {
    /// The flatten is a bijection: enumerating all leaf paths in
    /// lexicographic order (a mixed-radix counter) yields exactly the flat
    /// ids 0, 1, 2, … and `path_of_block` inverts `block_of_path`.
    #[test]
    fn hierarchical_flatten_is_a_bijection(
        arities in prop::collection::vec(1usize..5, 1..5)
    ) {
        let spec = HierarchySpec::uniform(&arities);
        let total = spec.total_blocks();
        // Mixed-radix counter over the arities = lexicographic path order.
        let mut path = vec![0u32; arities.len()];
        for flat in 0..total as u32 {
            prop_assert_eq!(spec.block_of_path(&path), flat);
            prop_assert_eq!(spec.path_of_block(flat), path.clone());
            // Increment the counter (least-significant = innermost level).
            for l in (0..arities.len()).rev() {
                path[l] += 1;
                if (path[l] as usize) < arities[l] {
                    break;
                }
                path[l] = 0;
            }
        }
        // The counter wrapped to all zeros: every path was visited once.
        prop_assert!(path.iter().all(|&c| c == 0));
    }

    /// `level_groups` is consistent with the paths: a block's level-l
    /// group is the flat number of its path prefix, and sibling leaves
    /// (same prefix) get contiguous flat ids.
    #[test]
    fn level_groups_follow_path_prefixes(
        arities in prop::collection::vec(1usize..5, 1..4)
    ) {
        let spec = HierarchySpec::uniform(&arities);
        let groups = spec.level_groups();
        for b in 0..spec.total_blocks() as u32 {
            let path = spec.path_of_block(b);
            let mut acc = 0usize;
            for (l, &a) in arities.iter().enumerate() {
                acc = acc * a + path[l] as usize;
                prop_assert_eq!(groups[l][b as usize] as usize, acc);
            }
        }
        // Each level-l group is a contiguous run of flat ids.
        for map in &groups {
            prop_assert!(map.windows(2).all(|w| w[0] <= w[1] && w[1] - w[0] <= 1));
        }
    }
}

/// ISSUE 4 acceptance: `[4, 2]` balances every level and beats flat k = 8
/// on inter-node communication volume on a clustered mesh. Deterministic:
/// single-rank solves of a seeded mesh.
#[test]
fn hierarchy_4x2_balances_every_level_and_beats_flat_inter_node_volume() {
    let mesh = bubbles_like(6_000, 33);
    let wp = WeightedPoints::new(mesh.points.clone(), mesh.weights.clone());
    let spec = HierarchySpec::uniform(&[4, 2]);
    let cfg = Config { sampling_init: false, ..Config::default() };

    let hier = partition_hierarchical(&wp, &spec, &cfg);
    assert!(hier.stats.balance_achieved);

    // Balance at *every* level, recomputed from the assignment alone:
    // node aggregates against total/4, leaves against their node's
    // weight/2, each with the max((1+ε)·target, target + w_max) floor.
    let groups = spec.level_groups();
    let total: f64 = wp.weights.iter().sum();
    let w_max = wp.weights.iter().copied().fold(0.0, f64::max);
    let mut node_w = [0.0f64; 4];
    let mut leaf_w = [0.0f64; 8];
    for (&b, &w) in hier.assignment.iter().zip(&wp.weights) {
        node_w[groups[0][b as usize] as usize] += w;
        leaf_w[b as usize] += w;
    }
    for (g, &w) in node_w.iter().enumerate() {
        let target = total / 4.0;
        let allowed = ((1.0 + cfg.epsilon) * target).max(target + w_max);
        assert!(w <= allowed + 1e-9, "node {g}: {w} > {allowed}");
    }
    for (b, &w) in leaf_w.iter().enumerate() {
        let target = node_w[b / 2] / 2.0;
        let allowed = ((1.0 + cfg.epsilon) * target).max(target + w_max);
        assert!(w <= allowed + 1e-9, "leaf {b}: {w} > {allowed}");
    }

    // Inter-node communication volume: strictly below flat k = 8 under
    // the same contiguous node mapping (blocks 2b, 2b+1 → node b).
    let flat = partition(&wp, 8, &cfg);
    let hier_inter =
        evaluate_levels(&mesh.graph, &hier.assignment, &groups)[0].total_comm_volume;
    let flat_inter =
        evaluate_levels(&mesh.graph, &flat.assignment, &groups)[0].total_comm_volume;
    assert!(
        hier_inter < flat_inter,
        "hierarchical inter-node volume {hier_inter} must be strictly below flat {flat_inter}"
    );
}
