//! Umbrella crate of the Geographer reproduction workspace: re-exports
//! every subsystem under one roof and hosts the cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! See the individual crates for the real APIs:
//!
//! * [`geographer`] — the balanced k-means partitioner (the paper's
//!   contribution);
//! * [`geographer_baselines`] — RCB, RIB, MultiJagged, HSFC;
//! * [`geographer_mesh`] — workload generators;
//! * [`geographer_graph`] — CSR graphs and partition metrics;
//! * [`geographer_parcomm`] — the SPMD communication layer;
//! * [`geographer_planner`] — the unified `PlanSpec`/`PlanState`/`Plan`
//!   solver front-end over pipeline, warm start, hierarchy, and
//!   refinement;
//! * [`geographer_refine`] — graph-aware boundary refinement;
//! * [`geographer_dsort`] — distributed sorting/selection;
//! * [`geographer_sfc`] — Hilbert curves;
//! * [`geographer_spmv`] — the SpMV communication benchmark;
//! * [`geographer_viz`] — SVG partition rendering;
//! * [`geographer_bench`] — the experiment harness.

pub use geographer;
pub use geographer_baselines;
pub use geographer_bench;
pub use geographer_dsort;
pub use geographer_geometry;
pub use geographer_graph;
pub use geographer_mesh;
pub use geographer_parcomm;
pub use geographer_planner;
pub use geographer_refine;
pub use geographer_sfc;
pub use geographer_spmv;
pub use geographer_viz;
