//! Offline shim for the `rayon` crate, implementing the subset this
//! workspace uses — `slice.par_iter().map(f).collect::<Vec<_>>()` and the
//! allocation-reusing `collect_into_vec(&mut out)` — with real data
//! parallelism over `std::thread::scope`.
//!
//! The container that builds this repo has no crates.io access, so the real
//! crate cannot be fetched. Instead of a work-stealing pool, the shim
//! splits the input slice into one contiguous chunk per available core,
//! maps each chunk on its own scoped thread, and assembles the results in
//! order. For the workspace's call sites (the k-means assignment loop and
//! per-block diameter bounds) that chunking is exactly the right shape:
//! uniform, memory-bound batch maps.
//!
//! [`ParMap::collect_into_vec`] mirrors real rayon's
//! `IndexedParallelIterator::collect_into_vec`: workers write directly
//! into disjoint chunks of the target vector's spare capacity, so a
//! suitably pre-sized buffer is refilled with **zero allocations** — the
//! hot-loop contract the k-means assignment kernel relies on.
//!
//! Order and output are identical to the sequential path by construction,
//! which `geographer::kmeans`'s `rayon_path_matches_serial` test checks.

use std::mem::MaybeUninit;
use std::num::NonZeroUsize;

/// Number of worker threads used by [`ParMap::collect`]: the machine's
/// available parallelism, overridable via `RAYON_NUM_THREADS` like the real
/// crate.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Borrowing entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: 'a;

    /// A parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a shared slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (applied in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { slice: self.slice, f }
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Apply the map across all cores and gather results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Apply the map across all cores, writing the results in input order
    /// into `target`, whose allocation is reused (real rayon's
    /// `collect_into_vec`). `target` is truncated and refilled; when its
    /// capacity already covers the input length no allocation happens —
    /// workers write straight into disjoint chunks of the spare capacity,
    /// with no per-chunk intermediate buffers.
    ///
    /// If the mapping closure panics, the panic propagates and `target` is
    /// left empty (already-written results are leaked, never dropped
    /// twice).
    pub fn collect_into_vec(self, target: &mut Vec<R>) {
        let n = self.slice.len();
        target.clear();
        target.reserve(n);
        let spare = &mut target.spare_capacity_mut()[..n];
        let threads = current_num_threads().min(n.max(1));
        let f = &self.f;
        if threads <= 1 || n < 2 {
            for (slot, x) in spare.iter_mut().zip(self.slice) {
                slot.write(f(x));
            }
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (inp, out) in self.slice.chunks(chunk).zip(spare.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        fill_chunk(inp, out, f);
                    });
                }
            });
        }
        // SAFETY: every one of the first `n` spare slots was written above
        // (the chunks exactly tile `spare`, and the scope joined all
        // workers — a worker panic propagates before reaching here).
        unsafe { target.set_len(n) };
    }

    fn run(self) -> Vec<R> {
        let n = self.slice.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n < 2 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

/// Write `f(inp[i])` into `out[i]` for one contiguous chunk.
fn fill_chunk<'a, T, R, F>(inp: &'a [T], out: &mut [MaybeUninit<R>], f: &F)
where
    F: Fn(&'a T) -> R,
{
    for (slot, x) in out.iter_mut().zip(inp) {
        slot.write(f(x));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let par: Vec<u64> = v.par_iter().map(|x| x * 3 + 1).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn collect_into_vec_matches_collect() {
        let v: Vec<u64> = (0..9_999).collect();
        let mut out = Vec::new();
        v.par_iter().map(|x| x * 7).collect_into_vec(&mut out);
        let seq: Vec<u64> = v.iter().map(|x| x * 7).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn collect_into_vec_reuses_the_allocation() {
        let v: Vec<u64> = (0..5_000).collect();
        let mut out: Vec<u64> = Vec::with_capacity(v.len());
        let ptr_before = out.as_ptr();
        for round in 0..3u64 {
            v.par_iter().map(|x| x + round).collect_into_vec(&mut out);
            assert_eq!(out.len(), v.len());
            assert_eq!(out[17], 17 + round);
            assert_eq!(
                out.as_ptr(),
                ptr_before,
                "a pre-sized buffer must never be reallocated"
            );
        }
    }

    #[test]
    fn collect_into_vec_empty_and_heap_elements() {
        let empty: Vec<u32> = Vec::new();
        let mut out: Vec<u32> = vec![1, 2, 3];
        empty.par_iter().map(|x| *x).collect_into_vec(&mut out);
        assert!(out.is_empty());
        // Non-Copy results must be moved in and dropped exactly once.
        let v: Vec<u32> = (0..500).collect();
        let mut strings: Vec<String> = Vec::new();
        v.par_iter().map(|x| x.to_string()).collect_into_vec(&mut strings);
        assert_eq!(strings.len(), 500);
        assert_eq!(strings[42], "42");
    }
}
