//! Offline shim for the `rayon` crate, implementing the subset this
//! workspace uses — `slice.par_iter().map(f).collect::<Vec<_>>()` — with
//! real data parallelism over `std::thread::scope`.
//!
//! The container that builds this repo has no crates.io access, so the real
//! crate cannot be fetched. Instead of a work-stealing pool, the shim
//! splits the input slice into one contiguous chunk per available core,
//! maps each chunk on its own scoped thread, and concatenates the results
//! in order. For the workspace's two call sites (the k-means assignment
//! loop and per-block diameter bounds) that chunking is exactly the right
//! shape: uniform, memory-bound batch maps.
//!
//! Order and output are identical to the sequential path by construction,
//! which `geographer::kmeans`'s `rayon_path_matches_serial` test checks.

use std::num::NonZeroUsize;

/// Number of worker threads used by [`ParMap::collect`]: the machine's
/// available parallelism, overridable via `RAYON_NUM_THREADS` like the real
/// crate.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Borrowing entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: 'a;

    /// A parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a shared slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (applied in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { slice: self.slice, f }
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Apply the map across all cores and gather results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    fn run(self) -> Vec<R> {
        let n = self.slice.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n < 2 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let par: Vec<u64> = v.par_iter().map(|x| x * 3 + 1).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
