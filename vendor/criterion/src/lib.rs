//! Offline shim for the `criterion` crate, implementing the subset this
//! workspace's five benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function, finish}`,
//! `Bencher::iter`, `black_box`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The container that builds this repo has no crates.io access, so the real
//! crate cannot be fetched. The shim does honest wall-clock measurement —
//! per sample it times a batch of iterations sized from a calibration run —
//! and prints mean/min/max per-iteration times plus derived throughput, but
//! performs no statistical analysis, HTML reporting, or baseline
//! comparison. Benches are built with `harness = false`, so
//! `cargo bench --no-run` compiles them and `cargo bench` runs them.

use std::hint;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units-of-work declaration used to derive a rate from the measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup { _criterion: self, sample_size: 10, throughput: None }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.benchmark_group("ungrouped").bench_function(name, f);
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare work-per-iteration for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f` and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { samples: Vec::new(), budget: self.sample_size };
        f(&mut b);
        b.report(name, self.throughput);
    }

    /// End the group (printing is incremental; this is a no-op for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; its [`iter`](Bencher::iter)
/// method does the measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Measure `routine`, collecting one timed batch per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~5 ms?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        for _ in 0..self.budget {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / per_sample);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {name:<28} (no samples)");
            return;
        }
        let mean: Duration =
            self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>10.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => {
                format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
        });
        println!(
            "  {name:<28} mean {mean:>12.3?}  [min {min:.3?}, max {max:.3?}]{}",
            rate.unwrap_or_default()
        );
    }
}

/// Bundle benchmark functions into a runnable group, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        g.bench_function("sum_1k", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        g.finish();
    }

    criterion_group!(selftest, trivial_bench);

    #[test]
    fn group_runs_and_measures() {
        selftest();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
