//! Offline shim for the `parking_lot` crate, implementing the subset of its
//! API this workspace uses on top of `std::sync`. The container that builds
//! this repo has no crates.io access, so the real crate cannot be fetched;
//! this shim keeps the `parking_lot` ergonomics (infallible `lock()`,
//! `Condvar::wait(&mut guard)`) while delegating to the standard library.
//!
//! Poisoning is deliberately ignored (`parking_lot` has no poisoning): a
//! panicking thread that held a lock leaves the data as-is, matching the
//! real crate's semantics closely enough for this workspace's usage.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive with `parking_lot`'s infallible API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never fails:
    /// poison from a panicked holder is ignored, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership (std's `Condvar` consumes and returns the guard, while
/// `parking_lot`'s mutates it in place).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable with `parking_lot`'s in-place `wait` API.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified, atomically releasing the guard's mutex.
    /// Spurious wakeups are possible, exactly as with the real crate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
