//! Offline shim for the `rand` crate (0.9-style API surface), implementing
//! exactly the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{random, random_range}`.
//!
//! The container that builds this repo has no crates.io access, so the real
//! crate cannot be fetched. The shim's `StdRng` is xoshiro256++ seeded via
//! SplitMix64 — a fixed, platform-independent algorithm, so any seed
//! produces bit-identical streams on every OS/architecture/toolchain. That
//! pinning is load-bearing: the workload generators in `geographer_mesh`
//! derive meshes from seeds, and the reproducibility tests
//! (`tests/spmd_invariance.rs`, `tests/proptests.rs`) assume seeded
//! generation is stable everywhere.

use std::ops::Range;

/// Types that can seed an RNG. Only `seed_from_u64` is provided — the sole
/// constructor used in this workspace (all mesh generators take `u64` seeds).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`,
    /// identically on every platform.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling interface, in the `rand` 0.9 naming (`random`,
/// `random_range`). Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (uniform `[0,1)` for floats, uniform over all values for integers).
    fn random<T: StandardDistribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open range `lo..hi`.
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::random`].
pub trait StandardDistribution: Sized {
    /// Draw one standard-distribution sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardDistribution for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDistribution for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDistribution for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistribution for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardDistribution for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a `Range` for [`Rng::random_range`].
pub trait SampleUniform: Sized {
    /// Draw one sample from `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Uniform `u64` in `[0, n)` by widening multiply (Lemire reduction without
/// the rejection step; the bias of at most `n/2^64` is irrelevant at the
/// range sizes used here and keeps the stream platform-identical).
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Unlike the real `rand`'s `StdRng` (whose algorithm is
    /// explicitly unspecified across versions), this one is pinned forever,
    /// which is what the reproducibility tests want.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn pinned_golden_values() {
        // Regression anchor: these exact values must hold on every
        // platform. If they change, seeded mesh generation changes too.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.random::<u64>()).collect();
        assert_eq!(
            first,
            vec![5987356902031041503, 7051070477665621255, 6633766593972829180]
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(0u32..17);
            assert!(x < 17);
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = r.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
