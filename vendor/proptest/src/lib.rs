//! Offline shim for the `proptest` crate, implementing the subset this
//! workspace's property tests use: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `prop::collection::vec`,
//! `any::<T>()`, `Strategy::prop_map`, and `ProptestConfig::with_cases`.
//!
//! The container that builds this repo has no crates.io access, so the real
//! crate cannot be fetched. Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic seed that regenerates it, not a minimized input.
//! * **Fully deterministic.** Case `i` of test `t` draws from an RNG seeded
//!   by `hash(t) ⊕ i` — the same inputs on every platform and every run,
//!   which is what this repo's reproducibility policy wants anyway.
//! * Strategies generate values directly (no intermediate value trees).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// What a generated test body returns: `Ok(())` on success, or a
/// `prop_assert!` failure message.
pub type TestCaseError = String;

/// Result alias used by the generated test closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies while generating one case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic per-(test, case) generator.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// A generator of test-case values (the shim collapses real proptest's
/// strategy/value-tree split into direct generation).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "arbitrary value" strategy, for [`any`].
pub trait Arbitrary {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u32()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of arbitrary values of `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification accepted by [`vec`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        Config as ProptestConfig, Strategy,
    };
    /// Alias letting `prop::collection::vec` resolve, as in real proptest.
    pub use crate as prop;
}

/// Assert a condition inside a `proptest!` body; failure rejects the case
/// with a message instead of panicking, so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// The test-definition macro. Supports the real crate's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each test runs `cases` deterministic cases; a failed `prop_assert!`
/// panics with the case index and message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::Config = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, config.cases, stringify!($name), msg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in 5u32..10, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<bool>(), 3..7), w in prop::collection::vec(0u32..4, 5)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 5);
        }

        #[test]
        fn prop_map_applies(s in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 200);
        }

        #[test]
        fn early_ok_return_works(n in 0usize..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let sa = (0.0f64..1.0).generate(&mut a);
        let sb = (0.0f64..1.0).generate(&mut b);
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
