//! The unified planner: every pillar of the reproduction behind one call.
//!
//! `Planner::solve(&PlanSpec, Option<&PlanState>, &comm)` subsumes the
//! cold pipeline, warm-start repartitioning, hierarchical processor-aware
//! solves, and multilevel refinement (DESIGN.md §8). This example walks
//! the three shapes on one drifting workload:
//!
//! 1. a **cold flat** solve — the paper's plain pipeline;
//! 2. a **warm restart** on the drifted points from the plan's own
//!    [`PlanState`] — no new driver code, just pass the state back in;
//! 3. the **stacked** configuration — warm hierarchical solve over a
//!    `[4, 2]` machine with a multilevel V-cycle at every hierarchy
//!    level, one `PlanSpec`.
//!
//! ```sh
//! cargo run --release --example planner
//! ```

use geographer::{Config, HierarchySpec};
use geographer_graph::edge_cut;
use geographer_mesh::{
    dynamic::{DynamicWorkload, Scenario},
    families::bubbles_like,
};
use geographer_parcomm::run_spmd;
use geographer_planner::{MeshView, PlanSpec, Planner, RefineMode, Tool};
use geographer_refine::MultilevelConfig;

fn main() {
    let (n, k, p, seed) = (6_000, 8, 2, 42);
    let base = bubbles_like(n, seed);
    let workload = DynamicWorkload::new(
        base.clone(),
        Scenario::ClusterDrift { clusters: k, speed: 0.004 },
        seed,
    );
    let cfg = Config { sampling_init: false, ..Config::default() };
    println!("clustered mesh: n = {n}, k = {k}, p = {p} SPMD ranks");

    // --- 1. Cold flat solve -------------------------------------------
    let spec = PlanSpec::flat(MeshView::from(&base), Tool::Geographer, k, cfg.clone());
    let cold = run_spmd(p, |comm| Planner::solve(&spec, None, &comm)).remove(0);
    let cold_stats = cold.stats.as_ref().expect("geographer reports stats");
    println!(
        "\ncold flat     cut {:>5}  imb {:.4}  ({} movement iterations)",
        edge_cut(&base.graph, &cold.assignment),
        cold.imbalance,
        cold_stats.movement_iterations,
    );

    // --- 2. Warm restarts from the plan's own state -------------------
    // On *unmoved* points the warm restart is a bitwise fixed point: the
    // solve resumes from its own converged centers and has nothing left
    // to move (the regression-tested contract of DESIGN.md §8).
    let state = cold.state.expect("stateful tool returns a PlanState");
    let fixed = run_spmd(p, |comm| Planner::solve(&spec, Some(&state), &comm)).remove(0);
    assert_eq!(
        fixed.assignment, cold.assignment,
        "warm restart on unmoved points must reproduce the plan bitwise"
    );
    println!("warm restart on unmoved points reproduces the assignment bitwise");

    // On drifted points the same call warm-starts k-means from the old
    // centers instead of re-running the SFC bootstrap.
    let drifted = workload.mesh_at(3);
    let spec = PlanSpec::flat(MeshView::from(&drifted), Tool::Geographer, k, cfg.clone());
    let warm = run_spmd(p, |comm| Planner::solve(&spec, Some(&state), &comm)).remove(0);
    let warm_stats = warm.stats.as_ref().expect("geographer reports stats");
    assert!(warm_stats.converged, "the warm solve must still converge");
    println!(
        "warm restart  cut {:>5}  imb {:.4}  (after 3 drift steps, no re-bootstrap)",
        edge_cut(&drifted.graph, &warm.assignment),
        warm.imbalance,
    );

    // --- 3. The stacked configuration ---------------------------------
    // A [4, 2] machine (4 nodes × 2 cores), solved hierarchically and
    // refined with the per-level multilevel V-cycle — the combination
    // that used to need bespoke glue is now just a spec.
    let hierarchy = HierarchySpec::uniform(&[4, 2]);
    let spec = PlanSpec::hierarchical(MeshView::from(&drifted), hierarchy, cfg.clone())
        .with_refine(RefineMode::Multilevel(MultilevelConfig::default()));
    let stacked = run_spmd(p, |comm| Planner::solve(&spec, None, &comm)).remove(0);
    let levels = stacked.levels.as_ref().expect("hierarchy specs report per-level metrics");
    println!(
        "stacked       cut {:>5}  imb {:.4}  (hierarchical [4,2] + per-level V-cycle)",
        edge_cut(&drifted.graph, &stacked.assignment),
        stacked.imbalance,
    );
    println!("  per-level view (level 0 = inter-node tier):");
    for (l, m) in levels.iter().enumerate() {
        println!(
            "    level {l}: {:>2} groups  cut {:>5}  max volume {:>5}",
            m.groups, m.edge_cut, m.max_comm_volume
        );
    }
    for r in stacked.level_refine.as_ref().expect("stacked plans report per-level refinement") {
        println!(
            "    refine: cut {:>5} -> {:>5}  ({} moves, {} sweeps)",
            r.cut_before, r.cut_after, r.moves, r.rounds
        );
    }

    // Illegal combinations fail with a typed error, not a panic deep in a
    // driver: the flat single-level sweep is not defined under a
    // hierarchy's per-level capacities.
    let bad = PlanSpec::hierarchical(
        MeshView::from(&drifted),
        HierarchySpec::uniform(&[4, 2]),
        cfg,
    )
    .with_refine(RefineMode::Single(Default::default()));
    let err = bad.validate(None).expect_err("hierarchy + Single refine is illegal");
    println!("\nillegal spec rejected: {err}");
}
