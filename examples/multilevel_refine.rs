//! Multilevel refinement: coarsen, refine where the graph is small,
//! project back, re-refine.
//!
//! An HSFC partition of a clustered mesh is refined two ways at the same
//! ε: one flat boundary sweep (`refine_partition`) and the multilevel
//! V-cycle (`refine_multilevel`). The flat pass only reaches minima that
//! single-vertex moves can reach; the V-cycle relocates whole clusters at
//! the coarse levels and recovers strictly more cut at comparable cost
//! (DESIGN.md §7).
//!
//! ```sh
//! cargo run --release --example multilevel_refine
//! ```

use geographer::Config;
use geographer_bench::{run_tool_configured, RefineMode, RunConfig, Tool};
use geographer_graph::imbalance;
use geographer_mesh::families::bubbles_like;
use geographer_refine::RefineConfig;

fn main() {
    let (n, k, seed) = (8_000, 16, 55);
    let mesh = bubbles_like(n, seed);
    let core = Config { sampling_init: false, ..Config::default() };
    println!("clustered mesh: n = {n}, k = {k}, ε = {}", core.epsilon);

    let mut outcomes = Vec::new();
    for mode in [RefineMode::Single, RefineMode::Multilevel] {
        let rc = RunConfig {
            core: core.clone(),
            refine: Some(RefineConfig::default()),
            refine_mode: mode,
        };
        let out = run_tool_configured(Tool::Hsfc, &mesh, k, 2, &rc);
        let report = out.refine.expect("refine post-pass was requested");
        println!(
            "\n{:<11} cut {} -> {}  ({:.1}% of the initial cut recovered, {} moves, imb {:.4})",
            mode.name(),
            report.cut_before,
            report.cut_after,
            100.0 * (report.cut_before - report.cut_after) as f64 / report.cut_before as f64,
            report.moves,
            imbalance(&out.assignment, &mesh.weights, k),
        );
        if let Some(ml) = &out.multilevel {
            println!("  V-cycle levels (coarsest first):");
            for l in &ml.levels {
                println!(
                    "    n = {:>6}  m = {:>7}  cut {:>6} -> {:>6}  ({} moves, {} sweeps)",
                    l.vertices, l.edges, l.cut_before, l.cut_after, l.moves, l.rounds
                );
            }
        }
        outcomes.push(report.cut_after);
    }
    assert!(
        outcomes[1] < outcomes[0],
        "the V-cycle must reach a strictly lower cut ({} vs {})",
        outcomes[1],
        outcomes[0]
    );
    println!(
        "\nmultilevel ends {:.1}% below the single-level pass at the same ε",
        100.0 * (outcomes[0] - outcomes[1]) as f64 / outcomes[0] as f64
    );
}
