//! Hierarchical (processor-aware) partitioning: put the big cut on the
//! cheap links.
//!
//! A clustered mesh is partitioned two ways for a machine of 4 nodes × 2
//! cores: flat k = 8 (blocks then sliced onto nodes in contiguous pairs,
//! the `owner_of_block` mapping) and hierarchically (split into 4 node
//! blocks first, then 2 core blocks inside each). The per-level metrics
//! show the hierarchical solve moving traffic off the inter-node links
//! and onto the intra-node ones, which the two-tier α–β model prices
//! (DESIGN.md §6).
//!
//! ```sh
//! cargo run --release --example hierarchy
//! ```

use geographer::{partition, partition_hierarchical, Config, HierarchySpec};
use geographer_bench::TieredCostModel;
use geographer_geometry::WeightedPoints;
use geographer_graph::evaluate_levels;
use geographer_mesh::families::bubbles_like;

fn main() {
    let (n, seed) = (6_000, 33);
    let mesh = bubbles_like(n, seed);
    let wp = WeightedPoints::new(mesh.points.clone(), mesh.weights.clone());
    let spec = HierarchySpec::uniform(&[4, 2]);
    let cfg = Config { sampling_init: false, ..Config::default() };
    let model = TieredCostModel::default();
    println!("clustered mesh: n = {n}, machine = 4 nodes x 2 cores, ε = {}", cfg.epsilon);

    let flat = partition(&wp, 8, &cfg);
    let hier = partition_hierarchical(&wp, &spec, &cfg);
    assert!(hier.stats.balance_achieved, "every node solve must balance");
    println!(
        "block 5 sits at hierarchy path {:?} (node 2, core 1)",
        hier.paths[5]
    );

    println!(
        "\n{:<12} {:>15} {:>15} {:>12} {:>18}",
        "config", "inter-node vol", "intra-node vol", "flat cut", "modeled exchange"
    );
    let mut inter_vols = Vec::new();
    for (name, asg) in [("flat-k8", &flat.assignment), ("hier-[4,2]", &hier.assignment)] {
        let levels = evaluate_levels(&mesh.graph, asg, &spec.level_groups());
        let inter = levels[0].total_comm_volume;
        let intra = levels.last().unwrap().total_comm_volume - inter;
        println!(
            "{:<12} {:>15} {:>15} {:>12} {:>16.1}us",
            name,
            inter,
            intra,
            levels.last().unwrap().edge_cut,
            model.exchange_seconds(8 * intra, 8 * inter) * 1e6
        );
        inter_vols.push(inter);
    }
    assert!(
        inter_vols[1] < inter_vols[0],
        "the hierarchical solve must put less volume on the inter-node links"
    );
    println!(
        "\nhierarchical solving cuts the inter-node volume by {:.0}%",
        100.0 * (1.0 - inter_vols[1] as f64 / inter_vols[0] as f64)
    );
}
