//! The paper's motivating 2.5D scenario (Sec. 1): partition a climate-model
//! ocean mesh whose node weights encode the vertical column height, so the
//! *weighted* load is balanced — not the vertex count.
//!
//! ```sh
//! cargo run --release --example climate_partition
//! ```

use geographer::{partition, Config};
use geographer_graph::evaluate_partition;
use geographer_mesh::climate25d;

fn main() {
    // Ocean mesh: coastal refinement + depth-proportional node weights.
    let mesh = climate25d(15_000, 40, 7);
    let total_w: f64 = mesh.weights.iter().sum();
    println!(
        "climate mesh: n = {}, m = {}, total weight = {:.0} (≈3D grid points)",
        mesh.n(),
        mesh.m(),
        total_w
    );

    let k = 12;
    let result = partition(&mesh.weighted_points(), k, &Config::default());

    // Per-block loads: weight balanced within ε even though vertex counts
    // differ strongly (deep-ocean blocks hold fewer, heavier vertices).
    let mut w_per_block = vec![0.0f64; k];
    let mut n_per_block = vec![0usize; k];
    for (&b, &w) in result.assignment.iter().zip(&mesh.weights) {
        w_per_block[b as usize] += w;
        n_per_block[b as usize] += 1;
    }
    println!("\nblock  vertices  weight   weight/avg");
    let avg = total_w / k as f64;
    for b in 0..k {
        println!(
            "{b:>5}  {:>8}  {:>7.0}  {:>9.3}",
            n_per_block[b],
            w_per_block[b],
            w_per_block[b] / avg
        );
    }
    let metrics = evaluate_partition(&mesh.graph, &result.assignment, &mesh.weights, k);
    println!("\nweighted imbalance: {:.4} (≤ 0.03 required)", metrics.imbalance);
    println!("total comm volume:  {}", metrics.total_comm_volume);
    assert!(metrics.imbalance <= 0.03 + 1e-9);

    let count_spread = n_per_block.iter().max().unwrap() - n_per_block.iter().min().unwrap();
    println!(
        "vertex-count spread across blocks: {count_spread} (weights, not counts, are balanced)"
    );
}
