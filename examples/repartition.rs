//! Repartitioning a drifting point set: warm starts vs cold re-runs.
//!
//! A cluster-drift workload evolves a Delaunay mesh over 8 time steps.
//! At every step the partition is recomputed two ways — cold (the full
//! SFC + k-means pipeline from scratch) and warm (balanced k-means
//! warm-started from the previous step's centers and influences) — and the
//! relabel-free migrated-point fraction between consecutive assignments is
//! printed for both. Warm starts track the drift, so far fewer points
//! change block (the paper's reuse argument; DESIGN.md §5).
//!
//! ```sh
//! cargo run --release --example repartition
//! ```

use geographer::{partition, repartition, Config};
use geographer_graph::relabel_free_migration;
use geographer_mesh::{delaunay_unit_square, DynamicWorkload, Scenario};

fn main() {
    let (n, k, steps, seed) = (10_000, 8, 8, 17);
    let workload = DynamicWorkload::new(
        delaunay_unit_square(n, seed),
        Scenario::ClusterDrift { clusters: 5, speed: 0.005 },
        seed,
    );
    let cfg = Config { sampling_init: false, ..Config::default() };
    println!("cluster-drift workload: n = {n}, k = {k}, {steps} steps, ε = {}", cfg.epsilon);
    println!("{:>4}  {:>12} {:>10}  {:>12} {:>10}", "step", "warm migr.", "time", "cold migr.", "time");

    // Step 0 bootstraps both chains with the same cold solve.
    let wp0 = geographer_geometry::WeightedPoints::new(
        workload.points_at(0),
        workload.weights_at(0),
    );
    let t = std::time::Instant::now();
    let first = partition(&wp0, k, &cfg);
    println!("{:>4}  {:>12} {:>9.3}s  (shared cold bootstrap)", 0, "—", t.elapsed().as_secs_f64());

    let mut warm_prev = first.clone();
    let mut cold_prev_asg = first.assignment.clone();
    let (mut warm_total, mut cold_total) = (0.0f64, 0.0f64);
    for step in 1..steps {
        let wp = geographer_geometry::WeightedPoints::new(
            workload.points_at(step),
            workload.weights_at(step),
        );

        let t = std::time::Instant::now();
        let warm = repartition(&wp, &warm_prev.previous(), k, &cfg);
        let warm_secs = t.elapsed().as_secs_f64();
        let warm_mig =
            relabel_free_migration(&warm_prev.assignment, &warm.assignment, &wp.weights, k);

        let t = std::time::Instant::now();
        let cold = partition(&wp, k, &cfg);
        let cold_secs = t.elapsed().as_secs_f64();
        let cold_mig = relabel_free_migration(&cold_prev_asg, &cold.assignment, &wp.weights, k);

        println!(
            "{:>4}  {:>11.1}% {:>9.3}s  {:>11.1}% {:>9.3}s",
            step,
            warm_mig.point_fraction * 100.0,
            warm_secs,
            cold_mig.point_fraction * 100.0,
            cold_secs,
        );
        assert!(warm.stats.balance_achieved, "warm step {step} must stay within ε");
        warm_total += warm_mig.point_fraction;
        cold_total += cold_mig.point_fraction;
        warm_prev = warm;
        cold_prev_asg = cold.assignment;
    }

    let resteps = (steps - 1) as f64;
    println!(
        "\nmean migrated-point fraction: warm {:.1}%, cold {:.1}%",
        warm_total / resteps * 100.0,
        cold_total / resteps * 100.0,
    );
    assert!(
        warm_total <= cold_total,
        "warm starts should not migrate more than cold re-runs on drift"
    );
}
