//! Render the block shapes of every tool as SVGs (the paper's Fig. 1) for
//! a mesh of your choice.
//!
//! ```sh
//! cargo run --release --example partition_gallery [n] [k]
//! ```

use geographer::Config;
use geographer_bench::{run_tool, Tool};
use geographer_mesh::families::bubbles_like;
use geographer_viz::render_partition_svg;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6000);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let mesh = bubbles_like(n, 17);
    let dir = std::path::Path::new("target/gallery");
    std::fs::create_dir_all(dir).expect("create output dir");
    println!("rendering bubbles-like mesh, n = {n}, k = {k} -> {}", dir.display());

    for tool in Tool::ALL {
        let out = run_tool(tool, &mesh, k, 1, &Config::default());
        let svg = render_partition_svg(&mesh.points, &out.assignment, k, 640, tool.name());
        let path = dir.join(format!("{}.svg", tool.name().to_lowercase()));
        std::fs::write(&path, svg).expect("write svg");
        println!("  {} ({:.2}s)", path.display(), out.wall_seconds);
    }
    println!("open the SVGs to compare block shapes (cf. paper Fig. 1)");
}
