//! Run Geographer the way the paper runs it: SPMD, one rank per "process",
//! each owning a shard of the points — here with threads as ranks via
//! `geographer_parcomm`. Shows per-phase timings (the Components breakdown
//! of Sec. 5.3.2) and the communication counters.
//!
//! ```sh
//! cargo run --release --example spmd_cluster
//! ```

use geographer::{partition_spmd, Config};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::{run_spmd, Collective, Comm};

fn main() {
    let mesh = delaunay_unit_square(40_000, 3);
    let p = 8; // ranks
    let k = 8; // blocks (independent of p in general; equal here, as in the paper)
    println!("SPMD run: n = {}, p = {p} ranks, k = {k} blocks", mesh.n());

    let n = mesh.n();
    let points = &mesh.points;
    let weights = &mesh.weights;
    let results = run_spmd(p, |comm| {
        let lo = comm.rank() * n / p;
        let hi = (comm.rank() + 1) * n / p;
        let res = partition_spmd(&comm, &points[lo..hi], &weights[lo..hi], k, &Config::default());
        let stats = res.stats.reduce(&comm);
        (res, stats, comm.stats())
    });

    let (res0, global_stats, comm_stats) = &results[0];
    println!("\nphase timings (rank 0):");
    println!("  hilbert indexing: {:>8.2} ms", res0.timings.sfc_index * 1e3);
    println!("  sort+redistribute:{:>8.2} ms", res0.timings.redistribute * 1e3);
    println!("  balanced k-means: {:>8.2} ms", res0.timings.kmeans * 1e3);
    println!("\nglobal k-means counters:");
    println!("  movement iterations: {}", global_stats.movement_iterations);
    println!("  balance iterations:  {}", global_stats.balance_iterations);
    println!("  distance evals:      {}", global_stats.distance_evals);
    println!("  Hamerly skip rate:   {:.1}%", global_stats.skip_rate() * 100.0);
    println!(
        "\ncommunication: {} collectives, {} rounds, {} bytes received per rank",
        comm_stats.collectives(),
        comm_stats.rounds(),
        comm_stats.bytes_per_rank()
    );
    for kind in Collective::ALL {
        let op = comm_stats.op(kind);
        if op.ops > 0 {
            println!(
                "  {:<10} {:>6} ops  {:>6} rounds  {:>12} bytes",
                kind.name(),
                op.ops,
                op.rounds,
                op.bytes
            );
        }
    }

    // Every rank returns its shard's assignment; verify global balance.
    let mut sizes = vec![0usize; k];
    for (res, _, _) in &results {
        for &b in &res.assignment {
            sizes[b as usize] += 1;
        }
    }
    println!("\nblock sizes: {sizes:?}");
    let max = *sizes.iter().max().unwrap() as f64;
    assert!(max / (n as f64 / k as f64) - 1.0 <= 0.03 + 1e-9);
    println!("balance constraint (ε = 3%) satisfied");
}
