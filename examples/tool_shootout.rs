//! Compare all five partitioners on one mesh — a single-instance slice of
//! the paper's Table 2.
//!
//! ```sh
//! cargo run --release --example tool_shootout
//! ```

use geographer::Config;
use geographer_bench::{evaluate_run, run_tool, Tool};
use geographer_mesh::families::trace_like;

fn main() {
    let mesh = trace_like(15_000, 9);
    let k = 16;
    println!(
        "tool shootout on trace-like mesh: n = {}, m = {}, k = {k}\n",
        mesh.n(),
        mesh.m()
    );
    println!(
        "{:<12} {:>9} {:>8} {:>11} {:>11} {:>9} {:>12}",
        "tool", "time", "cut", "maxCommVol", "totCommVol", "harmDiam", "spmvComm"
    );
    for tool in Tool::ALL {
        let out = run_tool(tool, &mesh, k, 4, &Config::default());
        let row = evaluate_run(tool, &mesh, &out, k, 10);
        println!(
            "{:<12} {:>8.3}s {:>8} {:>11} {:>11} {:>9.1} {:>10.1}us",
            row.tool,
            row.time,
            row.metrics.edge_cut,
            row.metrics.max_comm_volume,
            row.metrics.total_comm_volume,
            row.metrics.harmonic_diameter,
            row.spmv_comm_seconds * 1e6,
        );
    }
    println!("\n(expected: Geographer lowest totCommVol; every tool within 3% balance)");
}
