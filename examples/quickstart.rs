//! Quickstart: partition a Delaunay mesh into 8 balanced blocks with
//! Geographer and print the quality metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use geographer::{partition, Config};
use geographer_graph::evaluate_partition;
use geographer_mesh::delaunay_unit_square;

fn main() {
    // 1. Generate a mesh: a Delaunay triangulation of 20 000 random points
    //    (the paper's delaunayX family, laptop-sized).
    let mesh = delaunay_unit_square(20_000, 42);
    println!("mesh: n = {}, m = {}", mesh.n(), mesh.m());

    // 2. Partition its coordinates into k = 8 blocks, at most 3 % imbalance.
    let k = 8;
    let cfg = Config {
        parallel_local: true, // rayon-parallel assignment loops
        ..Config::default()
    };
    let t = std::time::Instant::now();
    let result = partition(&mesh.weighted_points(), k, &cfg);
    println!(
        "partitioned in {:.3}s ({} k-means iterations, {} converged, skip rate {:.0}%)",
        t.elapsed().as_secs_f64(),
        result.stats.movement_iterations,
        if result.stats.converged { "" } else { "not " },
        result.stats.skip_rate() * 100.0,
    );

    // 3. Evaluate with the paper's graph metrics.
    let metrics = evaluate_partition(&mesh.graph, &result.assignment, &mesh.weights, k);
    println!("edge cut:          {}", metrics.edge_cut);
    println!("max comm volume:   {}", metrics.max_comm_volume);
    println!("total comm volume: {}", metrics.total_comm_volume);
    println!("harmonic diameter: {:.1}", metrics.harmonic_diameter);
    println!("imbalance:         {:.4} (ε = {})", metrics.imbalance, cfg.epsilon);
    assert!(metrics.imbalance <= cfg.epsilon + 1e-9, "balance constraint violated");
}
